#include "radio/radio_medium.hpp"

#include <algorithm>

#include "chaos/failpoint.hpp"
#include "common/log.hpp"

namespace blap::radio {

void RadioMedium::attach(RadioEndpoint* endpoint) {
  const EndpointHandle h = registry_.attach(endpoint);
  if (links_of_slot_.size() <= h.slot) links_of_slot_.resize(h.slot + 1);
}

void RadioMedium::detach(RadioEndpoint* endpoint) {
  const EndpointHandle h = registry_.handle_of(endpoint);
  if (!h.valid()) return;
  // Copy: close_link() edits the per-slot list it is iterating from. The
  // list is ascending by construction, so teardown order matches the old
  // links_-walk order.
  const std::vector<LinkId> doomed = links_of_slot_[h.slot];
  registry_.detach(endpoint);
  for (LinkId id : doomed) close_link(id, endpoint, close_reason::kConnectionTimeout);
}

void RadioMedium::notify_endpoint_changed(RadioEndpoint* endpoint) {
  const EndpointHandle h = registry_.handle_of(endpoint);
  if (!h.valid()) return;
  const BdAddr before = registry_.address_of(endpoint);
  registry_.refresh(endpoint);
  if (before == endpoint->radio_address()) return;
  // The endpoint was spoofed while holding live links: re-key the
  // address-pair index so link_between() keeps resolving.
  for (LinkId id : links_of_slot_[h.slot]) {
    auto it = links_.find(id);
    if (it == links_.end()) continue;
    Link& link = it->second;
    link_index_.erase(link_key(link.addr_a, link.addr_b, id));
    link.addr_a = link.a->radio_address();
    link.addr_b = link.b->radio_address();
    link_index_.insert(link_key(link.addr_a, link.addr_b, id));
  }
}

void RadioMedium::index_link(LinkId id, Link& link) {
  link.addr_a = link.a->radio_address();
  link.addr_b = link.b->radio_address();
  link_index_.insert(link_key(link.addr_a, link.addr_b, id));
  links_of_slot_[link.a_handle.slot].push_back(id);
  links_of_slot_[link.b_handle.slot].push_back(id);
}

void RadioMedium::unindex_link(LinkId id, const Link& link) {
  link_index_.erase(link_key(link.addr_a, link.addr_b, id));
  std::erase(links_of_slot_[link.a_handle.slot], id);
  std::erase(links_of_slot_[link.b_handle.slot], id);
}

void RadioMedium::start_inquiry(RadioEndpoint* requester, SimTime duration,
                                std::function<void(const InquiryResponse&)> on_response,
                                std::function<void()> on_complete) {
  if (obs_ != nullptr) {
    obs_->count("radio.inquiries");
    obs_->span(scheduler_.now(), scheduler_.now() + duration,
               obs_->device_tid(requester->radio_name()), obs::Layer::kRadio, "inquiry");
  }
  const SimTime jitter_span = duration > 1 ? duration - 1 : 1;
  if (registry_.inquiry_scanner_count() < inquiry_batch_threshold_) {
    // Small scanner sets take the literal historical path: one scheduler
    // event per response, so dispatch counts (and Observer event metrics)
    // are unchanged for every existing scenario.
    registry_.for_each_inquiry_scanner([&](RadioEndpoint* ep) {
      if (ep == requester || !ep->inquiry_scan_enabled()) return;
      // FHS response collides with another responder's and is lost.
      if (BLAP_FAILPOINT("radio.inquiry.response_lost")) return;
      if (obs_ != nullptr) obs_->count("radio.inquiry_responses");
      // Responders answer somewhere inside the inquiry window; inquiry scan
      // windows are dense enough that every scanning device is found.
      const SimTime latency = 1 + rng_.uniform(jitter_span);
      InquiryResponse response{ep->radio_address(), ep->radio_class_of_device(),
                               ep->radio_name()};
      scheduler_.schedule_in(latency, [on_response, response] {
        if (on_response) on_response(response);
      });
    });
  } else {
    // Inquiry-response storm: collect every response up front and deliver
    // through one walking cursor event instead of k queue entries. The
    // sequence numbers the individual events would have drawn are reserved
    // as one contiguous block and assigned in draw order, so after sorting
    // by (when, seq) the cursor replays the exact global order the heap
    // would have produced — no event from outside the batch can carry a
    // sequence number inside the reserved range.
    auto batch = std::make_shared<InquiryBatch>();
    batch->on_response = on_response;
    const SimTime now = scheduler_.now();
    registry_.for_each_inquiry_scanner([&](RadioEndpoint* ep) {
      if (ep == requester || !ep->inquiry_scan_enabled()) return;
      if (BLAP_FAILPOINT("radio.inquiry.response_lost")) return;
      if (obs_ != nullptr) obs_->count("radio.inquiry_responses");
      const SimTime latency = 1 + rng_.uniform(jitter_span);
      batch->entries.push_back(InquiryBatch::Entry{
          now + latency, 0,
          InquiryResponse{ep->radio_address(), ep->radio_class_of_device(),
                          ep->radio_name()}});
    });
    if (!batch->entries.empty()) {
      const std::uint64_t base = scheduler_.reserve_seqs(batch->entries.size());
      for (std::size_t i = 0; i < batch->entries.size(); ++i)
        batch->entries[i].seq = base + i;
      std::sort(batch->entries.begin(), batch->entries.end(),
                [](const InquiryBatch::Entry& x, const InquiryBatch::Entry& y) {
                  return x.when != y.when ? x.when < y.when : x.seq < y.seq;
                });
      schedule_batch_delivery(std::move(batch));
    }
  }
  scheduler_.schedule_in(duration, [on_complete] {
    if (on_complete) on_complete();
  });
}

void RadioMedium::schedule_batch_delivery(std::shared_ptr<InquiryBatch> batch) {
  const InquiryBatch::Entry& head = batch->entries[batch->next];
  scheduler_.schedule_at_seq(head.when, head.seq, [this, batch] {
    const SimTime when = batch->entries[batch->next].when;
    do {
      const InquiryBatch::Entry& entry = batch->entries[batch->next++];
      if (batch->on_response) batch->on_response(entry.response);
    } while (batch->next < batch->entries.size() && batch->entries[batch->next].when == when);
    if (batch->next < batch->entries.size()) schedule_batch_delivery(batch);
  });
}

void RadioMedium::page(RadioEndpoint* initiator, const BdAddr& target, SimTime timeout,
                       std::function<void(std::optional<LinkId>)> on_result) {
  // Candidates: every page-scanning endpoint owning the target address,
  // straight from the BD_ADDR index. More than one candidate is the
  // BD_ADDR-spoofing situation; the earliest sampled scan window wins the
  // race. The index enumerates candidates in attach order — the order the
  // old linear scan drew latencies from the shared Rng stream in — and the
  // page-scan bit is re-read from the live virtual, so an endpoint that
  // missed a scan-state notify still answers correctly.
  RadioEndpoint* winner = nullptr;
  EndpointHandle winner_handle;
  SimTime best_latency = 0;
  struct Candidate {
    RadioEndpoint* ep;
    SimTime latency;
  };
  std::vector<Candidate> candidates;
  registry_.for_each_candidate(target, [&](RadioEndpoint* ep, EndpointHandle handle) {
    if (ep == initiator || !ep->page_scan_enabled()) return;
    // The candidate's every scan window misses the whole page train (deep
    // interference): it drops out of the race before sampling a latency.
    if (BLAP_FAILPOINT("radio.page.scan_missed")) return;
    const SimTime latency = ep->sample_page_response_latency(rng_);
    candidates.push_back(Candidate{ep, latency});
    if (winner == nullptr || latency < best_latency) {
      winner = ep;
      winner_handle = handle;
      best_latency = latency;
    }
  });

  if (obs_ != nullptr) {
    obs_->count("radio.pages");
    const SimTime now = scheduler_.now();
    // One span per candidate on the candidate's own lane: from page start
    // until its sampled scan window catches the train. With a spoofed
    // BD_ADDR two lanes carry overlapping spans — the race of Table II.
    for (const Candidate& c : candidates) {
      if (!obs_->tracing()) break;
      const bool won = c.ep == winner && best_latency <= timeout;
      obs_->span(now, now + c.latency, obs_->device_tid(c.ep->radio_name()),
                 obs::Layer::kRadio, "page_scan_race",
                 strfmt("%s for %s (latency %llu us)", won ? "WINS" : "loses",
                        target.to_string().c_str(),
                        static_cast<unsigned long long>(c.latency)));
    }
    obs_->instant(now, obs_->device_tid(initiator->radio_name()), obs::Layer::kRadio,
                  "page_start", strfmt("target %s, %zu candidate(s)",
                                       target.to_string().c_str(), candidates.size()));
  }

  if (winner == nullptr || best_latency > timeout) {
    if (obs_ != nullptr) obs_->count("radio.page_timeouts");
    // The initiator gives up at the full page timeout whether nobody scans
    // or the only scan window falls past the deadline.
    scheduler_.schedule_in(timeout, [on_result] {
      if (on_result) on_result(std::nullopt);
    });
    return;
  }
  if (obs_ != nullptr) obs_->observe("radio.page_latency_us", best_latency);

  const LinkId id = next_link_id_++;
  const EndpointHandle initiator_handle = registry_.handle_of(initiator);
  scheduler_.schedule_in(best_latency, [this, id, initiator_handle, winner_handle,
                                        on_result] {
    // Either side may have detached while the page train was running; a
    // link must never come up holding a dangling endpoint. The handles go
    // stale on detach, so this is O(1) — and, unlike the pointer scan it
    // replaces, immune to an endpoint detaching and re-attaching in the
    // window (a new attachment is a new generation).
    RadioEndpoint* initiator = registry_.resolve(initiator_handle);
    RadioEndpoint* responder = registry_.resolve(winner_handle);
    if (initiator == nullptr || responder == nullptr) {
      if (on_result) on_result(std::nullopt);
      return;
    }
    // The FHS/ID exchange died at the last moment: no link comes up and the
    // initiator sees an ordinary page timeout.
    if (BLAP_FAILPOINT("radio.page.train_lost")) {
      if (on_result) on_result(std::nullopt);
      return;
    }
    Link link;
    link.a = initiator;
    link.b = responder;
    link.a_handle = initiator_handle;
    link.b_handle = winner_handle;
    if (fault_plan_.enabled())
      link.channel = std::make_unique<faults::ChannelModel>(fault_plan_, id);
    Link& stored = links_[id] = std::move(link);
    index_link(id, stored);
    if (obs_ != nullptr) {
      obs_->count("radio.links_up");
      obs_->instant(scheduler_.now(), obs_->device_tid(responder->radio_name()),
                    obs::Layer::kRadio, "link_up",
                    strfmt("link %llu, paged by %s", static_cast<unsigned long long>(id),
                           initiator->radio_name().c_str()));
    }
    BLAP_DEBUG("radio", "link %llu up: %s -> %s", static_cast<unsigned long long>(id),
               initiator->radio_address().to_string().c_str(),
               responder->radio_address().to_string().c_str());
    // The responder's baseband misses the link-up (its POLL/NULL handshake
    // was jammed): the link exists but only the initiator knows. The
    // initiator's LMP response timeout is the genuine recovery path.
    if (!BLAP_FAILPOINT("radio.link.responder_notify_lost"))
      responder->on_link_established(id, initiator->radio_address(), false);
    initiator->on_link_established(id, responder->radio_address(), true);
    if (on_result) on_result(id);
  });
}

void RadioMedium::send_frame(LinkId link, RadioEndpoint* sender, Bytes frame,
                             TxReport on_report) {
  auto it = links_.find(link);
  if (it == links_.end()) return;
  const bool sender_is_a = it->second.a == sender;
  RadioEndpoint* receiver = sender_is_a ? it->second.b : it->second.a;
  const EndpointHandle receiver_handle =
      sender_is_a ? it->second.b_handle : it->second.a_handle;
  if (obs_ != nullptr) {
    obs_->count("radio.frames");
    obs_->observe("radio.frame_bytes", frame.size());
  }
  // The sniffer sees the frame as transmitted. Modelling an *ideal* capture
  // device (it hears what the sender put on the air, before channel damage)
  // keeps retroactive-decryption experiments meaningful under loss — and
  // keeps capture bytes identical to a fault-free run for the same traffic.
  if (!sniffers_.empty()) {
    SniffedFrame sniffed;
    sniffed.timestamp_us = scheduler_.now();
    sniffed.link = link;
    sniffed.sender = sender->radio_address();
    sniffed.receiver = receiver->radio_address();
    sniffed.frame = frame;
    for (const auto& sniffer : sniffers_) sniffer(sniffed);
  }

  // Channel verdict. Without a fault plan there is no ChannelModel: no Rng
  // draw, no branch below taken — the frame behaves exactly as it always has.
  auto verdict = faults::FaultVerdict::kDeliver;
  if (it->second.channel != nullptr) {
    verdict = it->second.channel->judge(scheduler_.now());
    if (verdict == faults::FaultVerdict::kCorrupt) it->second.channel->corrupt(frame);
    if (obs_ != nullptr && verdict != faults::FaultVerdict::kDeliver)
      obs_->count(strfmt("radio.faults.%s", faults::to_string(verdict)));
  }
  // Residual corruption escapes the CRC: the damaged frame is delivered and
  // the baseband ACKs it. Only outright drops count as undelivered.
  bool delivered = verdict == faults::FaultVerdict::kDeliver ||
                   verdict == faults::FaultVerdict::kCorrupt;
  // A burst of interference swallows the frame; the NAK still reaches the
  // sender (ARQ handles it), so the loss is recoverable by retransmission.
  if (BLAP_FAILPOINT("radio.frame.drop")) delivered = false;

  if (delivered) {
    scheduler_.schedule_in(frame_latency_,
                           [this, link, receiver_handle, frame = std::move(frame)] {
      // The link may have died while the frame was in flight (link ids are
      // never reused, so presence in links_ is conclusive); the receiver
      // handle going stale with the link still up cannot happen, but the
      // resolve keeps the dereference provably safe.
      if (!links_.contains(link)) return;
      RadioEndpoint* receiver = registry_.resolve(receiver_handle);
      if (receiver == nullptr) return;
      receiver->on_air_frame(link, frame);
    });
  }
  if (on_report) {
    // The return-slot ACK/NAK itself is lost: the sender hears nothing and
    // must fall back on its own retransmission timer.
    if (BLAP_FAILPOINT("radio.frame.report_lost")) return;
    // ACK/NAK lands after one TDD round trip (frame slot + return slot).
    const EndpointHandle sender_handle = registry_.handle_of(sender);
    scheduler_.schedule_in(2 * frame_latency_,
                           [this, sender_handle, delivered, on_report = std::move(on_report)] {
                             if (registry_.resolve(sender_handle) == nullptr) return;
                             on_report(delivered);
                           });
  }
}

void RadioMedium::close_link(LinkId link, RadioEndpoint* closer, std::uint8_t reason) {
  auto it = links_.find(link);
  if (it == links_.end()) return;
  const EndpointHandle peer_handle =
      it->second.a == closer ? it->second.b_handle : it->second.a_handle;
  unindex_link(link, it->second);
  links_.erase(it);
  if (obs_ != nullptr) {
    obs_->count("radio.links_closed");
    obs_->instant(scheduler_.now(), obs_->device_tid(closer->radio_name()),
                  obs::Layer::kRadio, "link_closed",
                  strfmt("link %llu, reason 0x%02x", static_cast<unsigned long long>(link),
                         reason));
  }
  BLAP_DEBUG("radio", "link %llu closed (reason 0x%02x)", static_cast<unsigned long long>(link),
             reason);
  // The closer's LMP_detach never reaches the peer: the peer only learns of
  // the teardown when its own supervision timeout expires.
  if (BLAP_FAILPOINT("radio.close.notify_lost")) return;
  // The peer learns of the teardown after one frame flight time — unless it
  // detached while the frame flew, which stales the handle.
  scheduler_.schedule_in(frame_latency_, [this, peer_handle, link, reason] {
    RadioEndpoint* peer = registry_.resolve(peer_handle);
    if (peer == nullptr) return;
    peer->on_link_closed(link, reason);
  });
}

std::vector<RadioMedium::LinkAuditView> RadioMedium::audit_links() const {
  std::vector<LinkAuditView> out;
  out.reserve(links_.size());
  for (const auto& [id, link] : links_) out.push_back(LinkAuditView{id, link.a, link.b});
  return out;
}

bool RadioMedium::audit_registry(std::string* why) const {
  std::size_t attached = 0;
  bool generations_ok = true;
  registry_.for_each_attached([&](RadioEndpoint* endpoint) {
    ++attached;
    const EndpointHandle h = registry_.handle_of(endpoint);
    if (!h.valid() || registry_.resolve(h) != endpoint) generations_ok = false;
  });
  if (!generations_ok) {
    if (why != nullptr) *why = "an attached endpoint fails its own generation-checked resolve";
    return false;
  }
  if (attached != registry_.size()) {
    if (why != nullptr)
      *why = strfmt("registry iterates %zu endpoints but reports size %zu", attached,
                    registry_.size());
    return false;
  }
  return true;
}

bool RadioMedium::audit_consistency(std::string* why) const {
  const auto fail = [&](std::string message) {
    if (why != nullptr) *why = std::move(message);
    return false;
  };
  if (link_index_.size() != links_.size())
    return fail(strfmt("address-pair index holds %zu entries for %zu links",
                       link_index_.size(), links_.size()));
  std::size_t slot_entries = 0;
  for (const auto& slot_links : links_of_slot_) slot_entries += slot_links.size();
  if (slot_entries != 2 * links_.size())
    return fail(strfmt("per-slot lists hold %zu entries for %zu links", slot_entries,
                       links_.size()));
  for (const auto& [id, link] : links_) {
    const auto text_id = static_cast<unsigned long long>(id);
    if (registry_.resolve(link.a_handle) != link.a ||
        registry_.resolve(link.b_handle) != link.b)
      return fail(strfmt("link %llu holds a stale endpoint handle", text_id));
    if (!link_index_.contains(link_key(link.addr_a, link.addr_b, id)))
      return fail(strfmt("link %llu missing from the address-pair index", text_id));
    if (link.a_handle.slot >= links_of_slot_.size() ||
        link.b_handle.slot >= links_of_slot_.size())
      return fail(strfmt("link %llu references a slot past the per-slot lists", text_id));
    const auto& a_links = links_of_slot_[link.a_handle.slot];
    const auto& b_links = links_of_slot_[link.b_handle.slot];
    // blap-lint: radio-scan-ok — audit-only membership probe; the invariant
    // being checked is precisely that these per-slot lists stay tiny
    if (std::find(a_links.begin(), a_links.end(), id) == a_links.end() ||
        std::find(b_links.begin(), b_links.end(), id) == b_links.end())
      return fail(strfmt("link %llu missing from a per-slot list", text_id));
    if ((link.channel != nullptr) != fault_plan_.enabled())
      return fail(strfmt("link %llu channel state disagrees with the fault plan", text_id));
  }
  return true;
}

RadioEndpoint* RadioMedium::peer_of(LinkId link, const RadioEndpoint* self) const {
  auto it = links_.find(link);
  if (it == links_.end()) return nullptr;
  if (it->second.a == self) return it->second.b;
  if (it->second.b == self) return it->second.a;
  return nullptr;
}

std::optional<LinkId> RadioMedium::link_between(const BdAddr& x, const BdAddr& y) const {
  // The pair index is keyed (lo, hi, id), so the first entry at or past
  // (lo, hi, 0) is the lowest live link id over this address pair — the
  // deterministic winner when a spoofing scenario creates several.
  const auto probe = link_key(x, y, 0);
  const auto it = link_index_.lower_bound(probe);
  if (it == link_index_.end()) return std::nullopt;
  if (std::get<0>(*it) != std::get<0>(probe) || std::get<1>(*it) != std::get<1>(probe))
    return std::nullopt;
  return std::get<2>(*it);
}

void RadioMedium::set_fault_plan(faults::FaultPlan plan) {
  fault_plan_ = std::move(plan);
  // Rebuild per-link channel state so a plan installed mid-scenario (e.g.
  // "the jammer arrives after pairing") applies to live links too.
  for (auto& [id, link] : links_)
    link.channel = fault_plan_.enabled()
                       ? std::make_unique<faults::ChannelModel>(fault_plan_, id)
                       : nullptr;
}

bool RadioMedium::save_state(state::StateWriter& w,
                             std::span<RadioEndpoint* const> roster) const {
  std::map<const RadioEndpoint*, std::uint64_t> roster_index;
  for (std::size_t i = 0; i < roster.size(); ++i)
    roster_index.emplace(roster[i], static_cast<std::uint64_t>(i));
  const auto index_of = [&roster_index](const RadioEndpoint* endpoint) -> std::int64_t {
    const auto it = roster_index.find(endpoint);
    return it == roster_index.end() ? -1 : static_cast<std::int64_t>(it->second);
  };

  w.u64(frame_latency_);
  w.u64(next_link_id_);
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  fault_plan_.save_state(w);
  w.u64(sniffers_.size());

  // Attachment set, in attach order (the paging race draws candidate
  // latencies in attach order, so the order is behaviourally significant).
  w.u64(registry_.size());
  bool all_resolved = true;
  registry_.for_each_attached([&](const RadioEndpoint* endpoint) {
    const std::int64_t index = index_of(endpoint);
    if (index < 0) {
      all_resolved = false;
      return;
    }
    w.u64(static_cast<std::uint64_t>(index));
  });
  if (!all_resolved) return false;

  w.u64(links_.size());
  for (const auto& [id, link] : links_) {
    const std::int64_t a = index_of(link.a);
    const std::int64_t b = index_of(link.b);
    if (a < 0 || b < 0) return false;
    w.u64(id);
    w.u64(static_cast<std::uint64_t>(a));
    w.u64(static_cast<std::uint64_t>(b));
    w.boolean(link.channel != nullptr);
    if (link.channel != nullptr) link.channel->save_state(w);
  }
  return true;
}

void RadioMedium::load_state(state::StateReader& r,
                             std::span<RadioEndpoint* const> roster,
                             state::RestoreMode mode) {
  frame_latency_ = r.u64();
  next_link_id_ = r.u64();
  std::array<std::uint64_t, 4> words{};
  for (std::uint64_t& word : words) word = r.u64();
  rng_.set_state(words);
  fault_plan_ = faults::FaultPlan::load_state(r);

  const std::uint64_t sniffer_count = r.u64();
  if (mode == state::RestoreMode::kRewind && sniffers_.size() > sniffer_count)
    sniffers_.resize(static_cast<std::size_t>(sniffer_count));

  const auto endpoint_at = [&](std::uint64_t index) -> RadioEndpoint* {
    if (index >= roster.size()) {
      r.fail("endpoint index out of range");
      return nullptr;
    }
    return roster[static_cast<std::size_t>(index)];
  };

  const std::uint64_t attached = r.u64();
  std::vector<RadioEndpoint*> in_order;
  in_order.reserve(static_cast<std::size_t>(attached));
  for (std::uint64_t i = 0; i < attached && r.ok(); ++i) {
    RadioEndpoint* endpoint = endpoint_at(r.u64());
    if (endpoint != nullptr) in_order.push_back(endpoint);
  }
  // The registry indexes each endpoint's *current* virtuals here; device
  // sections restore after the medium's, and Controller::load_state ends
  // with notify_endpoint_changed(), which re-syncs address and scan bits.
  registry_.load(in_order);
  std::size_t max_slot = 0;
  for (RadioEndpoint* endpoint : in_order)
    max_slot = std::max<std::size_t>(max_slot, registry_.handle_of(endpoint).slot + 1);
  if (links_of_slot_.size() < max_slot) links_of_slot_.resize(max_slot);
  for (auto& slot_links : links_of_slot_) slot_links.clear();
  link_index_.clear();

  links_.clear();
  const std::uint64_t stored_links = r.u64();
  for (std::uint64_t i = 0; i < stored_links && r.ok(); ++i) {
    const LinkId id = r.u64();
    Link link;
    link.a = endpoint_at(r.u64());
    link.b = endpoint_at(r.u64());
    link.a_handle = registry_.handle_of(link.a);
    link.b_handle = registry_.handle_of(link.b);
    if (r.boolean()) {
      link.channel = std::make_unique<faults::ChannelModel>(fault_plan_, id);
      link.channel->load_state(r);
    }
    if (r.ok() && link.a_handle.valid() && link.b_handle.valid()) {
      Link& stored = links_[id] = std::move(link);
      index_link(id, stored);
    }
  }
}

}  // namespace blap::radio
