// radio_medium.hpp — the shared 2.4 GHz medium connecting all controllers.
//
// The medium implements the two baseband procedures BLAP's second attack
// lives on:
//
//   * Inquiry — a requester broadcasts; every inquiry-scanning endpoint
//     responds with (BD_ADDR, COD, name) after its own scan-window latency.
//
//   * Page — a requester pages one BD_ADDR. Every page-scanning endpoint
//     that *owns that address* is a candidate; when an attacker spoofs the
//     legitimate device's BD_ADDR there are two candidates, and the medium
//     resolves the race by sampling each candidate's page-response latency.
//     Whichever scan window catches the page train first wins the baseband
//     connection. This race is exactly why the paper measures only 42–60 %
//     MITM success without page blocking (§VI footnote 1, Table II): the
//     same BD_ADDR is only meaningful during this short window, and the
//     attacker cannot control who answers first. The page blocking attack
//     sidesteps the race entirely by making the attacker the *initiator*.
//
// Established links carry opaque air frames (the controllers speak LMP and
// ACL over them); the medium adds per-frame propagation/TDD latency.
//
// Scale: endpoint state lives in an EndpointRegistry (see
// endpoint_registry.hpp) — page() resolves candidates from a BD_ADDR index
// in O(log n + candidates), start_inquiry() touches only the endpoints
// whose inquiry-scan bit is set, and delayed callbacks re-validate
// endpoints through O(1) generation-checked handles instead of scanning an
// attachment vector. Endpoints whose address or scan state changes while
// attached must route the change through notify_endpoint_changed();
// Controller does this from its HCI write paths.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "common/bdaddr.hpp"
#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "faults/fault_plan.hpp"
#include "obs/obs.hpp"
#include "radio/endpoint_registry.hpp"

namespace blap::radio {

using LinkId = std::uint64_t;

/// On-air link-detach reason codes. The baseband carries the same numeric
/// space as the HCI error codes (the LMP_detach PDU literally transports an
/// HCI error code), so these are aliases for the values every layer agrees
/// on — never pass a bare 0 (kSuccess), which carries no teardown cause.
namespace close_reason {
/// Supervision timeout / endpoint vanished mid-link (powered off, jammed).
inline constexpr std::uint8_t kConnectionTimeout = 0x08;
/// The remote user (or host policy) terminated the connection.
inline constexpr std::uint8_t kRemoteUserTerminated = 0x13;
}  // namespace close_reason

struct InquiryResponse {
  BdAddr address;
  ClassOfDevice class_of_device;
  std::string name;
};

/// Interface a controller implements to exist on the air.
class RadioEndpoint {
 public:
  virtual ~RadioEndpoint() = default;

  [[nodiscard]] virtual BdAddr radio_address() const = 0;
  [[nodiscard]] virtual ClassOfDevice radio_class_of_device() const = 0;
  [[nodiscard]] virtual std::string radio_name() const = 0;
  [[nodiscard]] virtual bool inquiry_scan_enabled() const = 0;
  [[nodiscard]] virtual bool page_scan_enabled() const = 0;

  /// Sample the time from page start until this endpoint's next page-scan
  /// window catches the page train. Device profiles tune this distribution;
  /// it decides the BD_ADDR-collision race.
  [[nodiscard]] virtual SimTime sample_page_response_latency(Rng& rng) = 0;

  /// A baseband link came up (page succeeded). The responder side should
  /// normally surface HCI_Connection_Request to its host.
  virtual void on_link_established(LinkId link, const BdAddr& peer, bool initiator) = 0;

  /// The peer (or the medium, on supervision teardown) closed the link.
  virtual void on_link_closed(LinkId link, std::uint8_t reason) = 0;

  /// An air frame arrived from the peer.
  virtual void on_air_frame(LinkId link, const Bytes& frame) = 0;
};

/// A frame observed on the air by a passive sniffer.
struct SniffedFrame {
  SimTime timestamp_us = 0;
  LinkId link = 0;
  BdAddr sender;
  BdAddr receiver;
  Bytes frame;  // LMP or (possibly encrypted) ACL air frame
};

class RadioMedium {
 public:
  RadioMedium(Scheduler& scheduler, Rng rng) : scheduler_(scheduler), rng_(rng) {}
  RadioMedium(const RadioMedium&) = delete;
  RadioMedium& operator=(const RadioMedium&) = delete;

  void attach(RadioEndpoint* endpoint);
  void detach(RadioEndpoint* endpoint);

  /// An attached endpoint's identity or scan state changed (address spoof,
  /// HCI Write_Scan_Enable, reset, snapshot restore). Re-indexes the
  /// endpoint and re-keys the address-pair index of its live links. No-op
  /// for detached endpoints. Required for correctness: page/inquiry/
  /// link_between resolve against the *indexed* address and scan bits.
  void notify_endpoint_changed(RadioEndpoint* endpoint);

  [[nodiscard]] std::size_t endpoint_count() const { return registry_.size(); }

  /// Broadcast inquiry. Responses arrive individually; on_complete fires at
  /// the end of the inquiry window.
  void start_inquiry(RadioEndpoint* requester, SimTime duration,
                     std::function<void(const InquiryResponse&)> on_response,
                     std::function<void()> on_complete);

  /// Page `target`. Resolves the scan race among all candidates; calls
  /// on_result with the new link id, or nullopt on page timeout.
  void page(RadioEndpoint* initiator, const BdAddr& target, SimTime timeout,
            std::function<void(std::optional<LinkId>)> on_result);

  /// Baseband delivery report: fired once per send_frame() that requested
  /// it, after one TDD round trip, with whether the frame survived the
  /// channel. Models the baseband ACK/NAK the controller's ARQ rides on.
  /// The report itself is reliable (ACK loss is not modelled).
  using TxReport = std::function<void(bool delivered)>;

  /// Send an opaque frame to the peer of `link`. No-op if the link is gone.
  /// When a FaultPlan is active, the link's ChannelModel may drop or corrupt
  /// the frame; pass `on_report` to learn the outcome (only delivered/lost —
  /// residual corruption passes CRC and reports as delivered). With no
  /// fault plan every frame is delivered and no report event is scheduled
  /// unless one was requested.
  void send_frame(LinkId link, RadioEndpoint* sender, Bytes frame,
                  TxReport on_report = nullptr);

  /// Tear a link down; the peer gets on_link_closed(reason). `reason` is an
  /// HCI error code (see close_reason:: for the common values) — never 0.
  void close_link(LinkId link, RadioEndpoint* closer, std::uint8_t reason);

  [[nodiscard]] bool link_alive(LinkId link) const { return links_.contains(link); }

  /// Peer endpoint of `link` from `self`'s perspective (nullptr if gone).
  [[nodiscard]] RadioEndpoint* peer_of(LinkId link, const RadioEndpoint* self) const;

  /// The live link between the endpoints owning these two addresses, if any
  /// (lowest link id wins when duplicates exist). Lets tests and tools find
  /// a connection without assuming "the first link in a fresh simulation
  /// has id 1".
  [[nodiscard]] std::optional<LinkId> link_between(const BdAddr& x, const BdAddr& y) const;

  /// Air latency applied to each frame (one-way).
  void set_frame_latency(SimTime latency) { frame_latency_ = latency; }

  /// Minimum inquiry-scanner count before an inquiry switches from one
  /// scheduler event per response to one cursor event fanning out each
  /// same-instant response group. Delivery order and timestamps are
  /// identical either way (the batch pre-reserves the tie-break sequence
  /// numbers the individual events would have drawn); only the scheduler
  /// dispatch count — visible to an installed Observer's event metrics —
  /// differs, which is why small-N scenarios keep the literal old path.
  void set_inquiry_batch_threshold(std::size_t threshold) {
    inquiry_batch_threshold_ = threshold;
  }

  /// Install (or clear, with a default-constructed plan) the fault plan.
  /// Takes effect immediately: channel models are (re)built for every live
  /// link. With a disabled plan the medium never consults a ChannelModel or
  /// its Rng, so outputs are byte-identical to a plan-free run.
  void set_fault_plan(faults::FaultPlan plan);
  [[nodiscard]] bool faults_enabled() const { return fault_plan_.enabled(); }
  [[nodiscard]] const faults::FaultPlan& fault_plan() const { return fault_plan_; }

  /// Attach (or clear) the simulation's observer. The medium records
  /// inquiry windows, the per-candidate paging-race spans that decide the
  /// Table II baseline, page timeouts and frame counts.
  void set_observer(obs::Observer* observer) { obs_ = observer; }

  /// Snapshot support. Endpoints are identified by their index into
  /// `roster` — the simulation's canonical endpoint list in device order —
  /// because BD_ADDRs are spoofable mid-scenario and pointers are not
  /// serializable. save_state fails the writer-side contract loudly (via
  /// the returned false) if a link references an endpoint outside the
  /// roster. load_state rebuilds links_ (with channel models re-derived
  /// from the restored fault plan) and, in kRewind mode, truncates the
  /// sniffer list back to the captured count — dropping exactly the
  /// sniffers a trial added after the capture point.
  bool save_state(state::StateWriter& w,
                  std::span<RadioEndpoint* const> roster) const;
  void load_state(state::StateReader& r, std::span<RadioEndpoint* const> roster,
                  state::RestoreMode mode);

  /// Replace the medium's own jitter stream (the per-trial reseed path).
  void set_rng(Rng rng) { rng_ = rng; }

  /// Attach a passive air sniffer (an Ubertooth-style capture device). It
  /// observes every frame on every link — including encrypted ACL payloads
  /// as ciphertext — which is what makes an extracted link key retroactively
  /// devastating (paper §IV-C: "decrypt not only the future, but also the
  /// past communications ... captured by air-sniffers").
  void add_sniffer(std::function<void(const SniffedFrame&)> sniffer) {
    sniffers_.push_back(std::move(sniffer));
  }

  /// One live link as seen by the medium, for the cross-layer invariant
  /// monitor (src/invariants/): the raw endpoint pointers let the monitor
  /// match links back to device controllers.
  struct LinkAuditView {
    LinkId id = 0;
    const RadioEndpoint* a = nullptr;
    const RadioEndpoint* b = nullptr;
  };
  [[nodiscard]] std::vector<LinkAuditView> audit_links() const;
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Structural self-check for the invariant monitor: every live link's
  /// generation-checked endpoint handles must resolve to its endpoint
  /// pointers, the address-pair index and the per-slot link lists must
  /// agree with links_, and channel models must exist iff faults are
  /// enabled. Returns false with `why` on the first inconsistency.
  [[nodiscard]] bool audit_consistency(std::string* why) const;

  /// Endpoint-registry generation audit, separate from audit_consistency()
  /// so the invariant monitor can name the two failures differently: every
  /// attached endpoint must resolve through its own handle, and iteration
  /// must agree with size().
  [[nodiscard]] bool audit_registry(std::string* why) const;

 private:
  struct Link {
    RadioEndpoint* a = nullptr;  // initiator
    RadioEndpoint* b = nullptr;  // responder
    /// Generation-checked handles for the two ends; what delayed callbacks
    /// capture and re-validate instead of the raw pointers above.
    EndpointHandle a_handle;
    EndpointHandle b_handle;
    /// Addresses as currently keyed into link_index_ (re-keyed by
    /// notify_endpoint_changed when an end is spoofed mid-link).
    BdAddr addr_a;
    BdAddr addr_b;
    /// Per-link fault state; null whenever the fault plan is disabled.
    std::unique_ptr<faults::ChannelModel> channel;
  };

  /// One in-flight inquiry's batched response schedule: entries sorted by
  /// (when, seq), delivered one same-instant group per cursor event.
  struct InquiryBatch {
    struct Entry {
      SimTime when;
      std::uint64_t seq;
      InquiryResponse response;
    };
    std::vector<Entry> entries;
    std::size_t next = 0;
    std::function<void(const InquiryResponse&)> on_response;
  };

  static std::tuple<BdAddr, BdAddr, LinkId> link_key(const BdAddr& x, const BdAddr& y,
                                                     LinkId id) {
    return x < y ? std::tuple{x, y, id} : std::tuple{y, x, id};
  }
  void index_link(LinkId id, Link& link);
  void unindex_link(LinkId id, const Link& link);
  void schedule_batch_delivery(std::shared_ptr<InquiryBatch> batch);

  Scheduler& scheduler_;
  Rng rng_;
  obs::Observer* obs_ = nullptr;
  EndpointRegistry registry_;
  std::vector<std::function<void(const SniffedFrame&)>> sniffers_;
  // Ordered map: teardown order is observable (close_link events) and must
  // be hash-independent.
  std::map<LinkId, Link> links_;
  // Live link ids per registry slot, ascending (link ids are monotonic and
  // appended in creation order) — detach() finds its doomed links here
  // without walking links_.
  std::vector<std::vector<LinkId>> links_of_slot_;
  // (lo addr, hi addr, id): link_between() answers in O(log L), and the id
  // in the key makes "lowest link id wins" fall out of map order when a
  // spoofing scenario creates several links over one address pair.
  std::set<std::tuple<BdAddr, BdAddr, LinkId>> link_index_;
  LinkId next_link_id_ = 1;
  SimTime frame_latency_ = 2 * kSlot;  // ~1.25 ms: one TDD round trip
  faults::FaultPlan fault_plan_;       // default: disabled
  std::size_t inquiry_batch_threshold_ = 16;
};

}  // namespace blap::radio
