// crowd.hpp — deterministic population-scale radio crowds.
//
// The ROADMAP's north star is attack behaviour inside *dense* radio
// environments — train-station crowds of phones, earbuds and car kits, not
// the paper's laboratory three-device cell. A Crowd fills a RadioMedium
// with up to hundreds of thousands of lightweight endpoints that exercise
// exactly the medium surfaces the BLAP attacker competes on:
//
//   * piconet pairs — a configurable fraction of the crowd pages its
//     partner and holds a baseband link (scatternet mesh density);
//   * inquiry-scan storms — a fraction of the crowd runs periodic
//     inquiries; every inquiry-scanning endpoint answers, driving the
//     medium's batched response fan-out;
//   * chatter — paired endpoints exchange keepalive frames, loading the
//     scheduler with cross-piconet traffic.
//
// CrowdEndpoint implements RadioEndpoint directly rather than carrying a
// full Device (host + controller + transport): a 100k-device crowd with
// full stacks would burn gigabytes and minutes of power-on HCI traffic for
// background extras whose only role is to occupy the air. The BLAP roles
// (A, C, M) stay full Devices; the crowd is the environment around them.
//
// Determinism: every draw (scan intervals, storm phases, chatter offsets)
// comes from one Rng seeded by CrowdConfig::seed, consumed in index order
// at build time; page-latency draws ride the medium's own stream like any
// other endpoint. A (seed, config) pair names one exact crowd.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "radio/radio_medium.hpp"

namespace blap::radio {

struct CrowdConfig {
  std::size_t population = 1000;
  /// Fraction of the crowd joined into two-endpoint piconets (rounded down
  /// to whole pairs).
  double paired_fraction = 0.5;
  /// Fraction of the crowd answering inquiries (inquiry scan on). The rest
  /// is connectable but not discoverable — like most real phones.
  double discoverable_fraction = 0.25;
  /// Number of endpoints running periodic inquiries. A count, not a
  /// fraction: each inquiry collects a response from every discoverable
  /// endpoint, so the event volume is storm_count * discoverable *
  /// (horizon / inquiry_interval) — callers size it to their budget.
  std::size_t storm_count = 2;
  SimTime inquiry_interval = 5 * kSecond;
  SimTime inquiry_duration = 2 * kSecond;
  /// Keepalive period for chattering pairs; 0 disables chatter.
  SimTime chatter_interval = 0;
  /// Fraction of pairs that chatter (when chatter_interval > 0).
  double chatter_fraction = 0.1;
  /// Crowd page-scan interval (R1, 1.28 s). Pair-forming pages use a
  /// timeout of twice this, so every pair connects.
  SimTime page_scan_interval = 2048 * kSlot;
  std::uint64_t seed = 1;
};

/// Aggregate counters the crowd's callbacks feed; what the scale bench and
/// the crowd scenario report.
struct CrowdStats {
  std::size_t links_established = 0;
  std::size_t pages_failed = 0;
  std::size_t inquiries_started = 0;
  std::size_t inquiry_responses_heard = 0;
  std::size_t frames_delivered = 0;
};

/// Minimal endpoint: a BD_ADDR, scan bits, a page-scan latency model, and
/// counters. No host, no controller, no HCI.
class CrowdEndpoint final : public RadioEndpoint {
 public:
  CrowdEndpoint(BdAddr address, SimTime page_scan_interval, bool discoverable,
                CrowdStats* stats)
      : address_(address), page_scan_interval_(page_scan_interval),
        discoverable_(discoverable), stats_(stats) {}

  [[nodiscard]] BdAddr radio_address() const override { return address_; }
  [[nodiscard]] ClassOfDevice radio_class_of_device() const override {
    return ClassOfDevice(ClassOfDevice::kMobilePhone);
  }
  [[nodiscard]] std::string radio_name() const override { return "crowd"; }
  [[nodiscard]] bool inquiry_scan_enabled() const override { return discoverable_; }
  [[nodiscard]] bool page_scan_enabled() const override { return true; }
  [[nodiscard]] SimTime sample_page_response_latency(Rng& rng) override {
    return 1 + rng.uniform(page_scan_interval_);
  }
  void on_link_established(LinkId link, const BdAddr&, bool initiator) override {
    if (initiator) link_ = link;
    ++stats_->links_established;
  }
  void on_link_closed(LinkId link, std::uint8_t) override {
    if (link_ == link) link_ = 0;
  }
  void on_air_frame(LinkId, const Bytes&) override { ++stats_->frames_delivered; }

  /// The link this endpoint initiated (0 if none / closed) — the chatter
  /// loop sends on it.
  [[nodiscard]] LinkId initiated_link() const { return link_; }

 private:
  BdAddr address_;
  SimTime page_scan_interval_;
  bool discoverable_;
  CrowdStats* stats_;
  LinkId link_ = 0;
};

class Crowd {
 public:
  Crowd(Scheduler& scheduler, RadioMedium& medium, CrowdConfig config);
  ~Crowd();
  Crowd(const Crowd&) = delete;
  Crowd& operator=(const Crowd&) = delete;

  /// Build and attach the population, then issue the pair-forming pages.
  /// Pages resolve through the scheduler: run the simulation (for at least
  /// 2 * page_scan_interval) to bring the piconet links up.
  void populate();

  /// Schedule inquiry storms and chatter from now until `horizon`
  /// (absolute). Every event lands strictly before the horizon, so a
  /// run_all() terminates.
  void start(SimTime horizon);

  /// Detach every crowd endpoint from the medium (idempotent; the
  /// destructor calls it too). Closes all crowd piconet links.
  void detach_all();

  [[nodiscard]] const CrowdStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t population() const { return endpoints_.size(); }

  /// Deterministic crowd member address: c0:5d:<index, big-endian>.
  [[nodiscard]] static BdAddr member_address(std::uint32_t index);

 private:
  void schedule_storm(std::size_t index, SimTime when, SimTime horizon);
  void schedule_chatter(std::size_t index, SimTime when, SimTime horizon);

  Scheduler& scheduler_;
  RadioMedium& medium_;
  CrowdConfig config_;
  Rng rng_;
  CrowdStats stats_;
  std::vector<std::unique_ptr<CrowdEndpoint>> endpoints_;
  bool attached_ = false;
};

}  // namespace blap::radio
