#include "radio/crowd.hpp"

#include <algorithm>

namespace blap::radio {

BdAddr Crowd::member_address(std::uint32_t index) {
  return BdAddr({0xC0, 0x5D, static_cast<std::uint8_t>(index >> 24),
                 static_cast<std::uint8_t>(index >> 16),
                 static_cast<std::uint8_t>(index >> 8),
                 static_cast<std::uint8_t>(index)});
}

Crowd::Crowd(Scheduler& scheduler, RadioMedium& medium, CrowdConfig config)
    : scheduler_(scheduler), medium_(medium), config_(config), rng_(config.seed) {}

Crowd::~Crowd() { detach_all(); }

void Crowd::populate() {
  const std::size_t n = config_.population;
  const std::size_t discoverable =
      static_cast<std::size_t>(static_cast<double>(n) * config_.discoverable_fraction);
  endpoints_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // The first `discoverable` members answer inquiries; membership must be
    // a pure function of the index so a (seed, config) pair names one crowd.
    endpoints_.push_back(std::make_unique<CrowdEndpoint>(
        member_address(static_cast<std::uint32_t>(i)), config_.page_scan_interval,
        i < discoverable, &stats_));
    medium_.attach(endpoints_.back().get());
  }
  attached_ = true;

  // Pair up the front of the crowd: 2k pages 2k+1. The page timeout covers
  // the worst page-scan draw, so every pair connects once the caller runs
  // the scheduler past the longest latency.
  const std::size_t pairs =
      static_cast<std::size_t>(static_cast<double>(n) * config_.paired_fraction) / 2;
  for (std::size_t p = 0; p < pairs; ++p) {
    const std::size_t a = 2 * p;
    medium_.page(endpoints_[a].get(), member_address(static_cast<std::uint32_t>(a + 1)),
                 2 * config_.page_scan_interval, [this](std::optional<LinkId> id) {
                   if (!id.has_value()) ++stats_.pages_failed;
                 });
  }
}

void Crowd::start(SimTime horizon) {
  const SimTime now = scheduler_.now();
  const std::size_t stormers = std::min(config_.storm_count, endpoints_.size());
  for (std::size_t i = 0; i < stormers; ++i) {
    // Random phase staggers the storms across the interval.
    const SimTime phase = rng_.uniform(config_.inquiry_interval > 0
                                           ? config_.inquiry_interval
                                           : 1);
    schedule_storm(i, now + phase, horizon);
  }
  if (config_.chatter_interval > 0) {
    const std::size_t pairs = static_cast<std::size_t>(
        static_cast<double>(endpoints_.size()) * config_.paired_fraction) / 2;
    const std::size_t chatterers =
        static_cast<std::size_t>(static_cast<double>(pairs) * config_.chatter_fraction);
    for (std::size_t p = 0; p < chatterers; ++p) {
      const SimTime phase = rng_.uniform(config_.chatter_interval);
      schedule_chatter(2 * p, now + phase, horizon);
    }
  }
}

void Crowd::schedule_storm(std::size_t index, SimTime when, SimTime horizon) {
  if (when >= horizon) return;
  scheduler_.schedule_at(when, [this, index, when, horizon] {
    if (!attached_) return;
    ++stats_.inquiries_started;
    medium_.start_inquiry(
        endpoints_[index].get(), config_.inquiry_duration,
        [this](const InquiryResponse&) { ++stats_.inquiry_responses_heard; }, nullptr);
    schedule_storm(index, when + config_.inquiry_interval, horizon);
  });
}

void Crowd::schedule_chatter(std::size_t index, SimTime when, SimTime horizon) {
  if (when >= horizon) return;
  scheduler_.schedule_at(when, [this, index, when, horizon] {
    if (!attached_) return;
    const LinkId link = endpoints_[index]->initiated_link();
    if (link != 0)
      medium_.send_frame(link, endpoints_[index].get(), Bytes{0x5A, 0x00});
    schedule_chatter(index, when + config_.chatter_interval, horizon);
  });
}

void Crowd::detach_all() {
  if (!attached_) return;
  attached_ = false;
  for (const auto& endpoint : endpoints_) medium_.detach(endpoint.get());
}

}  // namespace blap::radio
