// endpoint_registry.hpp — population-scale endpoint bookkeeping for the
// radio medium.
//
// The medium used to keep one std::vector<RadioEndpoint*> and answer every
// question about it by linear scan: page() walked all n endpoints to find
// the (usually one or two) owners of the target BD_ADDR, start_inquiry()
// walked all n to find the scanners, and attached() — the liveness check
// every delayed callback re-runs — was an O(n) std::find. Fine for the
// paper's two-device cells; a wall at the ROADMAP's 100k-device crowds.
//
// This registry replaces the vector with a structure-of-arrays slot table
// plus ordered indexes:
//
//   * SoA slot table — parallel vectors of endpoint pointer, indexed
//     BD_ADDR, attach sequence, generation counter and the two scan bits.
//     A slot is reused after detach with its generation bumped, so an
//     EndpointHandle{slot, generation} gives O(1) generation-checked
//     liveness: resolve() returns the pointer iff the same attachment is
//     still live. This is the same trick the Scheduler uses for event
//     cancellation.
//
//   * by_address_ — std::map keyed (BD_ADDR, attach_seq). page() resolves
//     its candidate set in O(log n + candidates). The attach_seq in the key
//     makes the map a deterministic multimap: when several endpoints own
//     one address (the BD_ADDR-spoofing race at the heart of the paper),
//     candidates enumerate in *attach order* — exactly the order the old
//     linear scan produced, which is load-bearing because each candidate
//     draws its page latency from the shared Rng stream in that order.
//
//   * inquiry_scanners_ — std::map attach_seq -> slot holding only the
//     endpoints whose inquiry-scan bit is set, so an inquiry in a 100k
//     crowd touches the scanners and nobody else.
//
//   * by_attach_order_ — attach_seq -> slot over the whole attachment set;
//     serialization iterates it to write the same attach-order byte layout
//     the endpoint vector produced.
//
// Staleness contract: the indexed address and scan bits are snapshots of
// the endpoint's virtuals taken at attach()/refresh() time. Whoever mutates
// an attached endpoint's identity or scan state must call
// RadioMedium::notify_endpoint_changed() (Controller does, from its HCI
// write paths). Lookups that tolerate a missed scan-bit notify re-check the
// live virtual on the (small) candidate set; a missed *address* notify is a
// contract violation and is documented as such.
//
// All containers are ordered (std::map) — iteration order feeds Rng draw
// order and event schedule order, so it must be hash- and address-layout-
// independent. blap-lint rule D5 enforces this for src/radio/.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/bdaddr.hpp"

namespace blap::radio {

class RadioEndpoint;

/// Generation-checked reference to an attachment. A default-constructed
/// handle (generation 0) is never live; slots issue generations from 1.
/// Cheap to copy into scheduler closures — the replacement for capturing a
/// raw RadioEndpoint* that a detach could dangle.
struct EndpointHandle {
  std::uint32_t slot = 0;
  std::uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return generation != 0; }
};

class EndpointRegistry {
 public:
  /// Attach `endpoint`, indexing its current address and scan bits.
  /// Idempotent: re-attaching a live endpoint returns its existing handle.
  EndpointHandle attach(RadioEndpoint* endpoint);

  /// Drop `endpoint` and bump its slot generation, so every outstanding
  /// handle to this attachment goes stale. No-op if not attached.
  void detach(RadioEndpoint* endpoint);

  /// Re-read `endpoint`'s address and scan bits and update the indexes.
  /// No-op if not attached. Attach seq (and so iteration position) is kept.
  void refresh(RadioEndpoint* endpoint);

  /// Rebuild the attachment set from `in_order` (snapshot restore).
  /// Endpoints already attached keep their slot and generation — an
  /// in-place restore must not invalidate handles captured by events that
  /// are still queued — but every endpoint is re-sequenced to its position
  /// in `in_order`, so iteration order afterwards matches the snapshot.
  void load(const std::vector<RadioEndpoint*>& in_order);

  [[nodiscard]] bool contains(const RadioEndpoint* endpoint) const {
    return slot_of_.find(endpoint) != slot_of_.end();
  }

  /// Handle for a live attachment; an invalid handle if not attached.
  [[nodiscard]] EndpointHandle handle_of(const RadioEndpoint* endpoint) const;

  /// O(1): the endpoint iff the attachment `h` refers to is still live.
  [[nodiscard]] RadioEndpoint* resolve(EndpointHandle h) const {
    if (h.slot >= endpoints_.size() || generations_[h.slot] != h.generation) return nullptr;
    return endpoints_[h.slot];
  }

  /// The address `endpoint` is currently indexed under (which trails the
  /// live virtual until notify/refresh). Meaningless if not attached.
  [[nodiscard]] BdAddr address_of(const RadioEndpoint* endpoint) const;

  [[nodiscard]] std::size_t size() const { return by_attach_order_.size(); }
  [[nodiscard]] std::size_t inquiry_scanner_count() const { return inquiry_scanners_.size(); }

  /// Whole attachment set, in attach order.
  template <typename Fn>
  void for_each_attached(Fn&& fn) const {
    for (const auto& [seq, slot] : by_attach_order_) fn(endpoints_[slot]);
  }

  /// Endpoints indexed as owning `address`, in attach order — the page-race
  /// candidate set. The callback gets the handle too, so the caller can
  /// capture liveness for delayed events without a second lookup.
  template <typename Fn>
  void for_each_candidate(const BdAddr& address, Fn&& fn) const {
    for (auto it = by_address_.lower_bound({address, 0});
         it != by_address_.end() && it->first.first == address; ++it) {
      const std::uint32_t slot = it->second;
      fn(endpoints_[slot], EndpointHandle{slot, generations_[slot]});
    }
  }

  /// Endpoints indexed as inquiry-scanning, in attach order.
  template <typename Fn>
  void for_each_inquiry_scanner(Fn&& fn) const {
    for (const auto& [seq, slot] : inquiry_scanners_) fn(endpoints_[slot]);
  }

 private:
  std::uint32_t acquire_slot(RadioEndpoint* endpoint);
  void index_slot(std::uint32_t slot);
  void unindex_slot(std::uint32_t slot);

  // SoA slot table. endpoints_[slot] is nullptr while the slot is free.
  std::vector<RadioEndpoint*> endpoints_;
  std::vector<BdAddr> addresses_;            // as indexed (see staleness contract)
  std::vector<std::uint64_t> attach_seqs_;
  std::vector<std::uint32_t> generations_;   // current generation per slot
  std::vector<std::uint8_t> inquiry_scan_;   // as indexed
  std::vector<std::uint8_t> page_scan_;      // as indexed
  std::vector<std::uint32_t> free_slots_;

  std::uint64_t next_attach_seq_ = 0;
  std::map<std::pair<BdAddr, std::uint64_t>, std::uint32_t> by_address_;
  std::map<std::uint64_t, std::uint32_t> by_attach_order_;
  std::map<std::uint64_t, std::uint32_t> inquiry_scanners_;
  // Pointer-keyed, so iteration order is address-layout-dependent; only
  // load() iterates it, and only to retire slots (not observable).
  std::map<const RadioEndpoint*, std::uint32_t> slot_of_;
};

}  // namespace blap::radio
