// libfuzzer_main.cpp — optional -fsanitize=fuzzer entry point.
//
// Reuses the exact target bodies the in-tree engine drives, so a libFuzzer
// campaign and a blap-fuzz campaign explore the same oracles. The target is
// selected with BLAP_FUZZ_TARGET (default hci_codec); an oracle failure
// aborts, which libFuzzer records as a crash with the offending input.
//
// Only built when BLAP_FUZZ_LIBFUZZER is ON and the toolchain supports
// -fsanitize=fuzzer (clang); the default GCC build never compiles this TU.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "fuzz/target.hpp"

namespace {

blap::fuzz::FuzzTarget& selected_target() {
  static const std::unique_ptr<blap::fuzz::FuzzTarget> target = [] {
    const char* name = std::getenv("BLAP_FUZZ_TARGET");
    const std::string resolved = name != nullptr ? name : "hci_codec";
    const auto factory = blap::fuzz::resolve_target(resolved);
    if (!factory) {
      std::fprintf(stderr, "BLAP_FUZZ_TARGET=%s: unknown target\n", resolved.c_str());
      std::abort();
    }
    return factory();
  }();
  return *target;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  blap::fuzz::FeatureSink sink;  // libFuzzer brings its own coverage; sink unused
  const blap::fuzz::ExecResult result =
      selected_target().execute(blap::BytesView(data, size), sink);
  if (result.finding) {
    std::fprintf(stderr, "finding [%s]: %s\n", result.kind.c_str(),
                 result.detail.c_str());
    std::abort();
  }
  return 0;
}
