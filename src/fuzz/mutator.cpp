#include "fuzz/mutator.hpp"

#include <algorithm>

#include "controller/lmp.hpp"
#include "hci/constants.hpp"

namespace blap::fuzz {
namespace {

Bytes u16_le(std::uint16_t v) {
  return {static_cast<std::uint8_t>(v & 0xFF), static_cast<std::uint8_t>(v >> 8)};
}

}  // namespace

Dictionary Dictionary::bluetooth() {
  Dictionary dict;
  // HCI command opcodes, little-endian as they appear in the wire header.
  // kLinkKeyRequestReply is the paper's "0b 04" signature byte pair.
  constexpr std::uint16_t kOpcodes[] = {
      hci::op::kInquiry,
      hci::op::kInquiryCancel,
      hci::op::kCreateConnection,
      hci::op::kDisconnect,
      hci::op::kAcceptConnectionRequest,
      hci::op::kRejectConnectionRequest,
      hci::op::kLinkKeyRequestReply,
      hci::op::kLinkKeyRequestNegativeReply,
      hci::op::kPinCodeRequestReply,
      hci::op::kPinCodeRequestNegativeReply,
      hci::op::kAuthenticationRequested,
      hci::op::kSetConnectionEncryption,
      hci::op::kRemoteNameRequest,
      hci::op::kIoCapabilityRequestReply,
      hci::op::kUserConfirmationRequestReply,
      hci::op::kUserConfirmationRequestNegativeReply,
      hci::op::kReset,
      hci::op::kReadStoredLinkKey,
      hci::op::kWriteLocalName,
      hci::op::kWriteScanEnable,
      hci::op::kWriteClassOfDevice,
      hci::op::kWriteSimplePairingMode,
      hci::op::kReadBdAddr,
  };
  for (const std::uint16_t op : kOpcodes) dict.tokens.push_back(u16_le(op));

  // HCI event codes.
  constexpr std::uint8_t kEvents[] = {
      hci::ev::kInquiryComplete,      hci::ev::kInquiryResult,
      hci::ev::kConnectionComplete,   hci::ev::kConnectionRequest,
      hci::ev::kDisconnectionComplete, hci::ev::kAuthenticationComplete,
      hci::ev::kRemoteNameRequestComplete, hci::ev::kEncryptionChange,
      hci::ev::kCommandComplete,      hci::ev::kCommandStatus,
      hci::ev::kReturnLinkKeys,       hci::ev::kPinCodeRequest,
      hci::ev::kLinkKeyRequest,       hci::ev::kLinkKeyNotification,
      hci::ev::kExtendedInquiryResult, hci::ev::kIoCapabilityRequest,
      hci::ev::kIoCapabilityResponse, hci::ev::kUserConfirmationRequest,
      hci::ev::kSimplePairingComplete,
  };
  for (const std::uint8_t code : kEvents) dict.tokens.push_back(Bytes{code});

  // H4 packet-type indicators.
  for (std::uint8_t t = 0x01; t <= 0x04; ++t) dict.tokens.push_back(Bytes{t});

  // LMP: air-channel discriminators and the full opcode range.
  dict.tokens.push_back(Bytes{static_cast<std::uint8_t>(controller::AirChannel::kLmp)});
  dict.tokens.push_back(Bytes{static_cast<std::uint8_t>(controller::AirChannel::kAcl)});
  for (std::uint8_t op = 1; op <= static_cast<std::uint8_t>(controller::LmpOpcode::kSresSc);
       ++op)
    dict.tokens.push_back(
        Bytes{static_cast<std::uint8_t>(controller::AirChannel::kLmp), op});

  // P-256 / P-192 coordinate widths (the LMP public-key length byte).
  dict.tokens.push_back(Bytes{24});
  dict.tokens.push_back(Bytes{32});

  // Boundary-interesting 16-bit values: handles, lengths, flag patterns.
  constexpr std::uint16_t kU16[] = {0x0000, 0x0001, 0x00FF, 0x0100, 0x0EFF,
                                    0x0FFF, 0x1000, 0x7FFF, 0x8000, 0xFFFF};
  for (const std::uint16_t v : kU16) dict.tokens.push_back(u16_le(v));
  return dict;
}

Mutator::Mutator(std::uint64_t seed, Dictionary dictionary)
    : rng_(seed), dictionary_(std::move(dictionary)) {}

Bytes Mutator::mutate(BytesView input, const std::vector<Bytes>& corpus_pool,
                      std::size_t max_len) {
  Bytes data = to_bytes(input);
  const std::uint64_t rounds = 1 + rng_.uniform(4);
  for (std::uint64_t i = 0; i < rounds; ++i) one_mutation(data, corpus_pool);
  if (data.empty()) data.push_back(static_cast<std::uint8_t>(rng_.next_u64()));
  if (data.size() > max_len) data.resize(max_len);
  return data;
}

void Mutator::one_mutation(Bytes& data, const std::vector<Bytes>& corpus_pool) {
  enum Kind : std::uint64_t {
    kBitFlip = 0,
    kByteSet,
    kByteArith,
    kInsert,
    kErase,
    kDupRange,
    kSplice,
    kDictInsert,
    kDictOverwrite,
    kLengthTweak,
    kTruncate,
    kKinds,
  };
  // Empty inputs can only grow.
  if (data.empty()) {
    const Bytes& token = dictionary_.tokens[rng_.uniform(dictionary_.tokens.size())];
    data = token;
    return;
  }
  switch (static_cast<Kind>(rng_.uniform(kKinds))) {
    case kBitFlip: {
      const std::size_t pos = rng_.uniform(data.size());
      data[pos] ^= static_cast<std::uint8_t>(1u << rng_.uniform(8));
      break;
    }
    case kByteSet: {
      data[rng_.uniform(data.size())] = static_cast<std::uint8_t>(rng_.next_u64());
      break;
    }
    case kByteArith: {
      // +/- a small delta: walks values across nearby enum cases and
      // off-by-one length bugs without leaving the neighbourhood.
      const std::size_t pos = rng_.uniform(data.size());
      const auto delta = static_cast<std::uint8_t>(1 + rng_.uniform(8));
      data[pos] = rng_.chance(0.5) ? static_cast<std::uint8_t>(data[pos] + delta)
                                   : static_cast<std::uint8_t>(data[pos] - delta);
      break;
    }
    case kInsert: {
      const std::size_t pos = rng_.uniform(data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos),
                  static_cast<std::uint8_t>(rng_.next_u64()));
      break;
    }
    case kErase: {
      const std::size_t n = 1 + rng_.uniform(std::min<std::size_t>(data.size(), 8));
      const std::size_t pos = rng_.uniform(data.size() - n + 1);
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(pos),
                 data.begin() + static_cast<std::ptrdiff_t>(pos + n));
      break;
    }
    case kDupRange: {
      const std::size_t n = 1 + rng_.uniform(std::min<std::size_t>(data.size(), 16));
      const std::size_t pos = rng_.uniform(data.size() - n + 1);
      const Bytes range(data.begin() + static_cast<std::ptrdiff_t>(pos),
                        data.begin() + static_cast<std::ptrdiff_t>(pos + n));
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), range.begin(),
                  range.end());
      break;
    }
    case kSplice: {
      if (corpus_pool.empty()) break;
      const Bytes& other = corpus_pool[rng_.uniform(corpus_pool.size())];
      if (other.empty()) break;
      const std::size_t head = rng_.uniform(data.size() + 1);
      const std::size_t tail_at = rng_.uniform(other.size());
      data.resize(head);
      data.insert(data.end(), other.begin() + static_cast<std::ptrdiff_t>(tail_at),
                  other.end());
      break;
    }
    case kDictInsert: {
      const Bytes& token = dictionary_.tokens[rng_.uniform(dictionary_.tokens.size())];
      const std::size_t pos = rng_.uniform(data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), token.begin(),
                  token.end());
      break;
    }
    case kDictOverwrite: {
      const Bytes& token = dictionary_.tokens[rng_.uniform(dictionary_.tokens.size())];
      if (token.size() > data.size()) break;
      const std::size_t pos = rng_.uniform(data.size() - token.size() + 1);
      for (std::size_t i = 0; i < token.size(); ++i) data[pos + i] = token[i];
      break;
    }
    case kLengthTweak: {
      // Stamp a boundary-interesting length over a random byte: zero, one,
      // exactly the bytes that follow it, or one past the end.
      const std::size_t pos = rng_.uniform(data.size());
      const std::size_t rest = data.size() - pos - 1;
      const std::uint8_t choices[] = {
          0, 1, static_cast<std::uint8_t>(rest),
          static_cast<std::uint8_t>(rest + 1 + rng_.uniform(4)),
          static_cast<std::uint8_t>(rng_.next_u64())};
      data[pos] = choices[rng_.uniform(std::size(choices))];
      break;
    }
    case kTruncate: {
      data.resize(1 + rng_.uniform(data.size()));
      break;
    }
    case kKinds:
      break;
  }
}

}  // namespace blap::fuzz
