#include "fuzz/targets.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "fuzz/codec_harness.hpp"
#include "hci/commands.hpp"
#include "hci/events.hpp"
#include "snapshot/chaos_trial.hpp"

namespace blap::fuzz {
namespace {

/// Byte-serialize a packet's full H4 wire form into a seed input.
Bytes wire_seed(const hci::HciPacket& packet) { return packet.to_wire(); }

}  // namespace

// --- hci_codec ---------------------------------------------------------------

std::vector<Bytes> HciCodecTarget::seed_inputs() const {
  std::vector<Bytes> seeds;
  seeds.push_back(wire_seed(hci::CreateConnectionCmd{}.encode()));
  seeds.push_back(wire_seed(hci::DisconnectCmd{.handle = 0x0042}.encode()));
  hci::ConnectionCompleteEvt complete;
  complete.handle = 0x0042;
  seeds.push_back(wire_seed(complete.encode()));
  hci::LinkKeyNotificationEvt key;
  key.link_key.fill(0x5A);
  seeds.push_back(wire_seed(key.encode()));
  // ACL fragment with continuation flags set — exercises the PB/BC paths.
  seeds.push_back(
      wire_seed(hci::make_acl_fragment(0x0042, 1, 0, Bytes{'e', 'c', 'h', 'o'})));
  return seeds;
}

ExecResult HciCodecTarget::execute(BytesView input, FeatureSink& sink) {
  const CheckResult check = check_hci_wire(input, &sink);
  if (check.ok) return {};
  return {true, "codec-round-trip", check.detail};
}

// --- lmp_codec ---------------------------------------------------------------

std::vector<Bytes> LmpCodecTarget::seed_inputs() const {
  std::vector<Bytes> seeds;
  controller::LmpPdu detach;
  detach.opcode = controller::LmpOpcode::kDetach;
  detach.payload = {0x13};
  seeds.push_back(detach.to_air_frame());

  controller::LmpPdu io_cap;
  io_cap.opcode = controller::LmpOpcode::kIoCapabilityReq;
  io_cap.payload = controller::LmpIoCap{.io_capability = 1}.encode();
  seeds.push_back(io_cap.to_air_frame());

  controller::LmpPublicKey key;
  key.x.assign(32, 0x11);
  key.y.assign(32, 0x22);
  controller::LmpPdu pubkey;
  pubkey.opcode = controller::LmpOpcode::kEncapsulatedPublicKey;
  pubkey.payload = key.encode();
  seeds.push_back(pubkey.to_air_frame());

  controller::LmpPdu not_accepted;
  not_accepted.opcode = controller::LmpOpcode::kNotAccepted;
  not_accepted.payload =
      controller::LmpNotAccepted{.rejected_opcode = controller::LmpOpcode::kAuRand,
                                 .reason = 0x05}
          .encode();
  seeds.push_back(not_accepted.to_air_frame());

  seeds.push_back(controller::acl_air_frame(Bytes{'l', '2', 'c', 'a', 'p'}));
  return seeds;
}

ExecResult LmpCodecTarget::execute(BytesView input, FeatureSink& sink) {
  const CheckResult check = check_lmp_frame(input, &sink);
  if (check.ok) return {};
  return {true, "codec-round-trip", check.detail};
}

// --- stack -------------------------------------------------------------------

StackTarget::StackTarget()
    : scenario_(snapshot::build_scenario(kStackSeed, snapshot::bonded_cell_params())) {
  snapshot::bonded_warm_setup(scenario_);
  std::string why;
  warm_ = snapshot::Snapshot::capture(*scenario_.sim, &why);
  if (!warm_.has_value()) {
    // Unreachable in a healthy tree — the snapshot tests gate exactly this
    // capture. Fail loudly rather than fuzz a dead scenario.
    std::fprintf(stderr, "StackTarget: warm capture failed: %s\n", why.c_str());
    std::abort();
  }
}

std::vector<Bytes> StackTarget::seed_inputs() const {
  std::vector<Bytes> seeds;

  // Pure time advance: 20 ticks x 50 ms, twice.
  seeds.push_back(Bytes{7, 20, 7, 20});

  // A well-formed Disconnect command injected at the target's host-side
  // transport, aimed at the live bonded ACL handle.
  {
    hci::ConnectionHandle handle = 0x0001;
    if (!scenario_.target->host().acls().empty())
      handle = scenario_.target->host().acls().front().handle;
    const Bytes wire = hci::DisconnectCmd{.handle = handle}.encode().to_wire();
    Bytes seed{1, static_cast<std::uint8_t>(wire.size() > 1 ? wire.size() - 1 : 0)};
    // Op payloads are HciPacket bodies, not H4 wire: drop the type byte.
    seed.insert(seed.end(), wire.begin() + 1, wire.end());
    seed.push_back(7);
    seed.push_back(40);
    seeds.push_back(std::move(seed));
  }

  // A phantom ConnectionComplete event surfaced to the target host.
  {
    hci::ConnectionCompleteEvt evt;
    evt.handle = 0x0099;
    evt.bdaddr = scenario_.accessory->address();
    const Bytes wire = evt.encode().to_wire();
    Bytes seed{0, static_cast<std::uint8_t>(wire.size() > 1 ? wire.size() - 1 : 0)};
    seed.insert(seed.end(), wire.begin() + 1, wire.end());
    seed.push_back(7);
    seed.push_back(40);
    seeds.push_back(std::move(seed));
  }

  // An LMP detach frame on the air toward the target.
  {
    controller::LmpPdu detach;
    detach.opcode = controller::LmpOpcode::kDetach;
    detach.payload = {0x13};
    const Bytes frame = detach.to_air_frame();
    Bytes seed{3, static_cast<std::uint8_t>(frame.size())};
    seed.insert(seed.end(), frame.begin(), frame.end());
    seed.push_back(7);
    seed.push_back(40);
    seeds.push_back(std::move(seed));
  }

  return seeds;
}

std::vector<Bytes> StackTarget::dictionary_extras() const {
  std::vector<Bytes> extras;
  for (const core::Device* device :
       {scenario_.target, scenario_.accessory, scenario_.attacker}) {
    if (device == nullptr) continue;
    const auto& addr = device->address().bytes();
    extras.emplace_back(addr.begin(), addr.end());
  }
  for (const auto& acl : scenario_.target->host().acls()) {
    extras.push_back(Bytes{static_cast<std::uint8_t>(acl.handle & 0xFF),
                           static_cast<std::uint8_t>((acl.handle >> 8) & 0xFF)});
  }
  return extras;
}

ExecResult StackTarget::execute(BytesView input, FeatureSink& sink) {
  const snapshot::FuzzFeatureFn feature = [&sink](std::uint8_t domain,
                                                  std::uint64_t value) {
    sink.hash(domain, value);
  };
  last_report_ =
      snapshot::run_fuzz_stack_trial(scenario_, *warm_, kStackSeed, input, feature);
  if (!last_report_.finding()) return {};
  return {true, last_report_.finding_kind(), last_report_.finding_detail()};
}

std::optional<snapshot::ReplayBundle> StackTarget::make_bundle(BytesView input,
                                                               const ExecResult& result) {
  (void)result;  // the bundle records last_report_'s verdict, finding or clean
  snapshot::ReplayBundle bundle;
  bundle.scenario = snapshot::bonded_cell_params();
  bundle.build_seed = kStackSeed;
  bundle.trial_seed = kStackSeed;
  bundle.trial_kind = "fuzz_stack";
  bundle.warm_setup = "bonded";
  bundle.fuzz_input = to_bytes(input);
  bundle.expected_success = !last_report_.finding();
  bundle.expected_value = static_cast<double>(last_report_.violations.size());
  bundle.expected_virtual_end = last_report_.virtual_end;
  bundle.snapshot = warm_->bytes();
  return bundle;
}

// --- registry ----------------------------------------------------------------

std::vector<std::string> target_names() { return {"hci_codec", "lmp_codec", "stack"}; }

TargetFactory resolve_target(const std::string& name) {
  if (name == "hci_codec")
    return [] { return std::unique_ptr<FuzzTarget>(new HciCodecTarget()); };
  if (name == "lmp_codec")
    return [] { return std::unique_ptr<FuzzTarget>(new LmpCodecTarget()); };
  if (name == "stack")
    return [] { return std::unique_ptr<FuzzTarget>(new StackTarget()); };
  return nullptr;
}

}  // namespace blap::fuzz
