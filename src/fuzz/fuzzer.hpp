// fuzzer.hpp — the coverage-guided fuzzing engine.
//
// run_fuzz_campaign() is a deterministic, sharded fuzzing loop:
//
//   shard seed  = trial_seed(root_seed, shard)         (SplitMix64 stream)
//   shard state = own target + own Mutator + own CoverageMap + own Corpus
//   shard loop  = pick → mutate → execute → keep if coverage grew,
//                 minimise + record if the oracle called it a finding
//
// Shards are the unit of parallelism *and* of determinism: a shard's work
// is a pure function of its seed, so the campaign output — merged corpus
// digest, findings report JSON — is byte-identical for any BLAP_JOBS value
// and across runs. Shard results merge in shard order, never in completion
// order. (When sancov instrumentation is active the engine clamps to one
// worker: the 8-bit counters are process-global, so concurrent shards
// would bleed coverage into each other.)
//
// No wall clock anywhere (lint rule D1): throughput measurement lives in
// bench/bench_fuzz_throughput.cpp, which is allowed to time things.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/target.hpp"

namespace blap::fuzz {

struct FuzzConfig {
  /// Registry name: "hci_codec", "lmp_codec", "stack".
  std::string target = "stack";
  std::uint64_t seed = 1;
  /// Mutation executions per shard (seed-input executions are extra).
  std::size_t iterations = 1000;
  std::size_t shards = 4;
  /// Worker threads; 0 = resolve_jobs() (BLAP_JOBS env, else cores).
  unsigned jobs = 0;
  /// A shard stops recording (but keeps fuzzing) past this many findings —
  /// one broken decoder must not flood the report.
  std::size_t max_findings_per_shard = 8;
  /// Max target executions minimisation may spend per finding.
  std::size_t minimize_budget = 512;
};

/// One recorded oracle failure.
struct Finding {
  std::size_t shard = 0;
  /// Mutation-loop iteration within the shard; seed-input executions are
  /// iteration 0, 1, ... with `from_seed` set.
  std::size_t iteration = 0;
  bool from_seed = false;
  std::string kind;
  std::string detail;
  Bytes input;
  Bytes minimized;
};

struct FuzzReport {
  std::string target;
  std::uint64_t seed = 0;
  std::size_t shards = 0;
  std::size_t iterations_per_shard = 0;
  unsigned jobs_used = 0;

  std::size_t executions = 0;
  /// Per-shard feature counts, shard order.
  std::vector<std::size_t> shard_features;
  /// Merged corpus (shard order, dedup) and its determinism fingerprint.
  Corpus corpus;
  std::string corpus_digest;
  std::vector<Finding> findings;

  /// Deterministic JSON (sorted fixed key order, base64 inputs, no
  /// timestamps) — the artifact CI diffs across BLAP_JOBS values.
  [[nodiscard]] std::string to_json() const;
};

/// Run the campaign. Returns nullopt-style failure via `why` only for an
/// unknown target name.
[[nodiscard]] std::optional<FuzzReport> run_fuzz_campaign(const FuzzConfig& config,
                                                          std::string* why = nullptr);

}  // namespace blap::fuzz
