#include "fuzz/fuzzer.hpp"

#include <atomic>
#include <thread>
#include <utility>

#include "campaign/campaign.hpp"
#include "common/base64.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/mutator.hpp"

namespace blap::fuzz {
namespace {

struct ShardResult {
  std::size_t executions = 0;
  std::size_t features = 0;
  std::vector<Bytes> corpus_entries;  // discovery order
  std::vector<Finding> findings;
};

void record_finding(const FuzzConfig& config, FuzzTarget& target, ShardResult& out,
                    std::size_t shard, std::size_t iteration, bool from_seed,
                    const Bytes& input, const ExecResult& result) {
  if (out.findings.size() >= config.max_findings_per_shard) return;
  Finding finding;
  finding.shard = shard;
  finding.iteration = iteration;
  finding.from_seed = from_seed;
  finding.kind = result.kind;
  finding.detail = result.detail;
  finding.input = input;
  MinimizeStats stats;
  finding.minimized =
      minimize_finding(target, input, result.kind, config.minimize_budget, &stats);
  out.executions += stats.executions;
  out.findings.push_back(std::move(finding));
}

ShardResult run_shard(const FuzzConfig& config, const TargetFactory& factory,
                      std::size_t shard) {
  ShardResult out;
  const std::unique_ptr<FuzzTarget> target = factory();

  Dictionary dictionary = Dictionary::bluetooth();
  for (auto& extra : target->dictionary_extras())
    dictionary.tokens.push_back(std::move(extra));
  Mutator mutator(campaign::trial_seed(config.seed, shard), std::move(dictionary));

  CoverageMap map;
  Corpus corpus;
  FeatureSink sink;

  const auto run_one = [&](const Bytes& input) {
    sink.clear();
    const ExecResult result = target->execute(input, sink);
    if (sancov_active()) collect_sancov_features(sink);
    ++out.executions;
    return result;
  };

  // Seed phase: every seed enters the corpus unconditionally (they are the
  // mutation base set), and a seed that already trips the oracle is a
  // finding like any other.
  std::size_t seed_index = 0;
  for (const Bytes& seed : target->seed_inputs()) {
    const ExecResult result = run_one(seed);
    map.accumulate(sink);
    if (result.finding)
      record_finding(config, *target, out, shard, seed_index, true, seed, result);
    corpus.add(seed);
    ++seed_index;
  }
  if (corpus.empty()) corpus.add(Bytes{0});

  for (std::size_t iteration = 0; iteration < config.iterations; ++iteration) {
    const Bytes input =
        mutator.mutate(corpus.pick(mutator.rng()), corpus.entries(),
                       target->max_input_len());
    const ExecResult result = run_one(input);
    if (result.finding) {
      // Findings never enter the corpus: a reliably-failing input would
      // dominate pick() and re-discover itself forever.
      record_finding(config, *target, out, shard, iteration, false, input, result);
      continue;
    }
    if (map.accumulate(sink) > 0) corpus.add(input);
  }

  out.features = map.feature_count();
  out.corpus_entries = corpus.entries();
  return out;
}

void append_json_string(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string FuzzReport::to_json() const {
  std::string out = "{\n  \"target\": ";
  append_json_string(out, target);
  out += ",\n  \"seed\": " + std::to_string(seed);
  out += ",\n  \"shards\": " + std::to_string(shards);
  out += ",\n  \"iterations_per_shard\": " + std::to_string(iterations_per_shard);
  out += ",\n  \"executions\": " + std::to_string(executions);
  out += ",\n  \"corpus_entries\": " + std::to_string(corpus.size());
  out += ",\n  \"corpus_digest\": ";
  append_json_string(out, corpus_digest);
  out += ",\n  \"shard_features\": [";
  for (std::size_t i = 0; i < shard_features.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(shard_features[i]);
  }
  out += "],\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"shard\": " + std::to_string(f.shard);
    out += ", \"iteration\": " + std::to_string(f.iteration);
    out += ", \"from_seed\": ";
    out += f.from_seed ? "true" : "false";
    out += ", \"kind\": ";
    append_json_string(out, f.kind);
    out += ", \"detail\": ";
    append_json_string(out, f.detail);
    out += ", \"input\": ";
    append_json_string(out, base64_encode(f.input));
    out += ", \"minimized\": ";
    append_json_string(out, base64_encode(f.minimized));
    out += "}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::optional<FuzzReport> run_fuzz_campaign(const FuzzConfig& config, std::string* why) {
  const TargetFactory factory = resolve_target(config.target);
  if (!factory) {
    if (why != nullptr) *why = "unknown fuzz target: " + config.target;
    return std::nullopt;
  }

  FuzzReport report;
  report.target = config.target;
  report.seed = config.seed;
  report.shards = config.shards;
  report.iterations_per_shard = config.iterations;

  unsigned jobs = campaign::resolve_jobs(config.jobs);
  if (jobs > config.shards) jobs = static_cast<unsigned>(config.shards);
  if (jobs < 1) jobs = 1;
  // Sancov counters are process-global; concurrent shards would observe each
  // other's edges and the per-shard determinism contract would break.
  if (sancov_active()) jobs = 1;
  report.jobs_used = jobs;

  std::vector<ShardResult> shard_results(config.shards);
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t shard = next.fetch_add(1);
      if (shard >= config.shards) return;
      shard_results[shard] = run_shard(config, factory, shard);
    }
  };
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  // Deterministic merge: shard order, not completion order.
  for (std::size_t shard = 0; shard < config.shards; ++shard) {
    ShardResult& sr = shard_results[shard];
    report.executions += sr.executions;
    report.shard_features.push_back(sr.features);
    for (auto& entry : sr.corpus_entries) report.corpus.add(std::move(entry));
    for (auto& finding : sr.findings) report.findings.push_back(std::move(finding));
  }
  report.corpus_digest = report.corpus.digest();
  return report;
}

}  // namespace blap::fuzz
