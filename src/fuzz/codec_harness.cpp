#include "fuzz/codec_harness.hpp"

#include <algorithm>

#include "hci/commands.hpp"
#include "hci/events.hpp"

namespace blap::fuzz {
namespace {

/// FNV-1a over a label string: a stable, compiler-independent hash for
/// "decoder X accepted this input" features.
std::uint64_t label_hash(const char* label) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char* c = label; *c != '\0'; ++c) {
    h ^= static_cast<std::uint8_t>(*c);
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Canonical idempotence over arbitrary accepted input: if T::decode accepts
/// `params`, re-encoding must produce a wire form whose own parameter block
/// decodes and re-encodes to the same wire — decode∘encode is a fixed point.
template <typename T>
CheckResult check_params_fixed_point(BytesView params, const char* label,
                                     FeatureSink* sink) {
  const auto decoded = T::decode(params);
  if (!decoded) return {};
  if (sink != nullptr) sink->hash(0x10, label_hash(label));
  const Bytes wire = decoded->encode().to_wire();
  const auto reparsed = hci::HciPacket::from_wire(wire);
  if (!reparsed)
    return check_fail(std::string(label) + ": canonical re-encode failed to reparse");
  const auto canon_params = reparsed->type == hci::PacketType::kCommand
                                ? reparsed->command_params()
                                : reparsed->event_params();
  if (!canon_params)
    return check_fail(std::string(label) + ": canonical re-encode lost its parameters");
  const auto again = T::decode(*canon_params);
  if (!again)
    return check_fail(std::string(label) + ": canonical parameters failed to re-decode");
  if (again->encode().to_wire() != wire)
    return check_fail(std::string(label) + ": decode/encode is not a fixed point");
  return {};
}

}  // namespace

CheckResult check_h4_round_trip(const hci::HciPacket& packet) {
  const Bytes wire = packet.to_wire();
  const auto parsed = hci::HciPacket::from_wire(wire);
  if (!parsed) return check_fail("H4: own wire failed to reparse");
  if (*parsed != packet) return check_fail("H4: reparse changed the packet");
  if (parsed->to_wire() != wire) return check_fail("H4: re-encode differs from wire");
  return {};
}

CheckResult check_lmp_round_trip(const controller::LmpPdu& pdu) {
  const Bytes frame = pdu.to_air_frame();
  const auto parsed = controller::LmpPdu::from_air_frame(frame);
  if (!parsed) return check_fail("LMP: own frame failed to reparse");
  if (parsed->opcode != pdu.opcode) return check_fail("LMP: reparse changed the opcode");
  if (parsed->payload != pdu.payload) return check_fail("LMP: reparse changed the payload");
  if (parsed->to_air_frame() != frame)
    return check_fail("LMP: re-encode differs from frame");
  return {};
}

CheckResult check_hci_wire(BytesView wire, FeatureSink* sink) {
  const auto packet = hci::HciPacket::from_wire(wire);
  if (!packet) {
    if (sink != nullptr) sink->hash(0x11, wire.empty() ? 0u : wire[0]);
    return {};
  }
  if (sink != nullptr) {
    sink->hash(0x12, static_cast<std::uint64_t>(packet->type));
    sink->hash(0x13, (static_cast<std::uint64_t>(packet->type) << 32) |
                         std::min<std::size_t>(packet->payload.size(), 1024));
  }
  // H4 reparse identity holds for every accepted wire string.
  if (packet->to_wire() != to_bytes(wire))
    return check_fail("H4: accepted wire did not re-encode identically");

  switch (packet->type) {
    case hci::PacketType::kCommand: {
      const auto opcode = packet->command_opcode();
      const auto params = packet->command_params();
      if (!params) return {};
      if (!opcode) return check_fail("HCI command: parameters without an opcode");
      if (sink != nullptr) sink->hash(0x14, *opcode);
      using namespace hci;
      CheckResult r;
      const auto probe = [&](auto tag, const char* label) {
        if (!r.ok) return;
        using Cmd = decltype(tag);
        r = check_params_fixed_point<Cmd>(*params, label, sink);
      };
      switch (*opcode) {
        case op::kInquiry: probe(InquiryCmd{}, "InquiryCmd"); break;
        case op::kCreateConnection:
          probe(CreateConnectionCmd{}, "CreateConnectionCmd");
          break;
        case op::kDisconnect: probe(DisconnectCmd{}, "DisconnectCmd"); break;
        case op::kAcceptConnectionRequest:
          probe(AcceptConnectionRequestCmd{}, "AcceptConnectionRequestCmd");
          break;
        case op::kRejectConnectionRequest:
          probe(RejectConnectionRequestCmd{}, "RejectConnectionRequestCmd");
          break;
        case op::kLinkKeyRequestReply:
          probe(LinkKeyRequestReplyCmd{}, "LinkKeyRequestReplyCmd");
          break;
        case op::kLinkKeyRequestNegativeReply:
          probe(LinkKeyRequestNegativeReplyCmd{}, "LinkKeyRequestNegativeReplyCmd");
          break;
        case op::kPinCodeRequestReply:
          probe(PinCodeRequestReplyCmd{}, "PinCodeRequestReplyCmd");
          break;
        case op::kPinCodeRequestNegativeReply:
          probe(PinCodeRequestNegativeReplyCmd{}, "PinCodeRequestNegativeReplyCmd");
          break;
        case op::kAuthenticationRequested:
          probe(AuthenticationRequestedCmd{}, "AuthenticationRequestedCmd");
          break;
        case op::kSetConnectionEncryption:
          probe(SetConnectionEncryptionCmd{}, "SetConnectionEncryptionCmd");
          break;
        case op::kRemoteNameRequest:
          probe(RemoteNameRequestCmd{}, "RemoteNameRequestCmd");
          break;
        case op::kIoCapabilityRequestReply:
          probe(IoCapabilityRequestReplyCmd{}, "IoCapabilityRequestReplyCmd");
          break;
        case op::kUserConfirmationRequestReply:
          probe(UserConfirmationRequestReplyCmd{}, "UserConfirmationRequestReplyCmd");
          break;
        case op::kUserConfirmationRequestNegativeReply:
          probe(UserConfirmationRequestNegativeReplyCmd{},
                "UserConfirmationRequestNegativeReplyCmd");
          break;
        case op::kWriteScanEnable: probe(WriteScanEnableCmd{}, "WriteScanEnableCmd"); break;
        case op::kWriteClassOfDevice:
          probe(WriteClassOfDeviceCmd{}, "WriteClassOfDeviceCmd");
          break;
        case op::kWriteLocalName: probe(WriteLocalNameCmd{}, "WriteLocalNameCmd"); break;
        case op::kWriteSimplePairingMode:
          probe(WriteSimplePairingModeCmd{}, "WriteSimplePairingModeCmd");
          break;
        default: break;
      }
      return r;
    }
    case hci::PacketType::kEvent: {
      const auto code = packet->event_code();
      const auto params = packet->event_params();
      if (!params) return {};
      if (sink != nullptr) sink->hash(0x15, *code);
      using namespace hci;
      CheckResult r;
      const auto probe = [&](auto tag, const char* label) {
        if (!r.ok) return;
        using Evt = decltype(tag);
        r = check_params_fixed_point<Evt>(*params, label, sink);
      };
      switch (*code) {
        case ev::kCommandComplete: probe(CommandCompleteEvt{}, "CommandCompleteEvt"); break;
        case ev::kCommandStatus: probe(CommandStatusEvt{}, "CommandStatusEvt"); break;
        case ev::kInquiryResult: probe(InquiryResultEvt{}, "InquiryResultEvt"); break;
        case ev::kInquiryComplete: probe(InquiryCompleteEvt{}, "InquiryCompleteEvt"); break;
        case ev::kExtendedInquiryResult:
          probe(ExtendedInquiryResultEvt{}, "ExtendedInquiryResultEvt");
          break;
        case ev::kConnectionRequest:
          probe(ConnectionRequestEvt{}, "ConnectionRequestEvt");
          break;
        case ev::kConnectionComplete:
          probe(ConnectionCompleteEvt{}, "ConnectionCompleteEvt");
          break;
        case ev::kDisconnectionComplete:
          probe(DisconnectionCompleteEvt{}, "DisconnectionCompleteEvt");
          break;
        case ev::kAuthenticationComplete:
          probe(AuthenticationCompleteEvt{}, "AuthenticationCompleteEvt");
          break;
        case ev::kRemoteNameRequestComplete:
          probe(RemoteNameRequestCompleteEvt{}, "RemoteNameRequestCompleteEvt");
          break;
        case ev::kEncryptionChange: probe(EncryptionChangeEvt{}, "EncryptionChangeEvt"); break;
        case ev::kLinkKeyRequest: probe(LinkKeyRequestEvt{}, "LinkKeyRequestEvt"); break;
        case ev::kLinkKeyNotification:
          probe(LinkKeyNotificationEvt{}, "LinkKeyNotificationEvt");
          break;
        case ev::kIoCapabilityRequest:
          probe(IoCapabilityRequestEvt{}, "IoCapabilityRequestEvt");
          break;
        case ev::kPinCodeRequest: probe(PinCodeRequestEvt{}, "PinCodeRequestEvt"); break;
        case ev::kIoCapabilityResponse:
          probe(IoCapabilityResponseEvt{}, "IoCapabilityResponseEvt");
          break;
        case ev::kUserConfirmationRequest:
          probe(UserConfirmationRequestEvt{}, "UserConfirmationRequestEvt");
          break;
        case ev::kSimplePairingComplete:
          probe(SimplePairingCompleteEvt{}, "SimplePairingCompleteEvt");
          break;
        default: break;
      }
      return r;
    }
    case hci::PacketType::kAclData: {
      const auto handle = packet->acl_handle();
      const auto data = packet->acl_data();
      if (data.has_value() && !handle.has_value())
        return check_fail("ACL: data without a handle");
      if (!data) return {};
      if (sink != nullptr) {
        sink->hash(0x16, *handle);
        sink->hash(0x17, std::min<std::size_t>(data->size(), 1024));
      }
      // Header consistency: the length field covered exactly the bytes the
      // accessor returned, and the flag accessors agree with the raw header.
      const std::size_t declared =
          static_cast<std::size_t>(packet->payload[2] | (packet->payload[3] << 8));
      if (data->size() != declared)
        return check_fail("ACL: accessor length disagrees with the header");
      const auto pb = packet->acl_pb_flag();
      const auto bc = packet->acl_bc_flag();
      if (!pb || !bc) return check_fail("ACL: handle present but flags absent");
      // An exactly-sized packet must rebuild byte-identically from its
      // parsed fields — the fragment builder and the parser are inverses.
      if (packet->payload.size() == 4 + declared) {
        const hci::HciPacket rebuilt = hci::make_acl_fragment(*handle, *pb, *bc, *data);
        if (rebuilt != *packet)
          return check_fail("ACL: parse/rebuild is not the identity");
      }
      return {};
    }
    case hci::PacketType::kScoData: return {};
  }
  return {};
}

CheckResult check_lmp_frame(BytesView frame, FeatureSink* sink) {
  // ACL air-frame path: parse must mirror acl_air_frame exactly.
  if (const auto acl = controller::parse_acl_air_frame(frame)) {
    if (sink != nullptr) sink->hash(0x18, std::min<std::size_t>(acl->size(), 1024));
    if (controller::acl_air_frame(*acl) != to_bytes(frame))
      return check_fail("ACL air frame: parse/rebuild is not the identity");
  }

  const auto pdu = controller::LmpPdu::from_air_frame(frame);
  if (!pdu) {
    if (sink != nullptr) sink->hash(0x19, frame.empty() ? 0u : frame[0]);
    return {};
  }
  if (sink != nullptr) {
    sink->hash(0x1A, static_cast<std::uint64_t>(pdu->opcode));
    sink->hash(0x1B, (static_cast<std::uint64_t>(pdu->opcode) << 32) |
                         std::min<std::size_t>(pdu->payload.size(), 256));
  }
  if (pdu->to_air_frame() != to_bytes(frame))
    return check_fail("LMP: accepted frame did not re-encode identically");

  // Typed payload decoders: canonical fixed point for whatever they accept.
  using controller::LmpOpcode;
  const auto fixed_point = [&](auto decoded, const char* label) -> CheckResult {
    if (!decoded) return {};
    if (sink != nullptr) sink->hash(0x1C, label_hash(label));
    const Bytes enc = decoded->encode();
    const auto again = std::decay_t<decltype(*decoded)>::decode(enc);
    if (!again)
      return check_fail(std::string(label) + ": canonical payload failed to re-decode");
    if (again->encode() != enc)
      return check_fail(std::string(label) + ": decode/encode is not a fixed point");
    return {};
  };
  switch (pdu->opcode) {
    case LmpOpcode::kIoCapabilityReq:
    case LmpOpcode::kIoCapabilityRes:
      return fixed_point(controller::LmpIoCap::decode(pdu->payload), "LmpIoCap");
    case LmpOpcode::kEncapsulatedPublicKey:
      return fixed_point(controller::LmpPublicKey::decode(pdu->payload), "LmpPublicKey");
    case LmpOpcode::kNotAccepted:
      return fixed_point(controller::LmpNotAccepted::decode(pdu->payload),
                         "LmpNotAccepted");
    default: return {};
  }
}

}  // namespace blap::fuzz
