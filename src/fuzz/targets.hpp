// targets.hpp — the concrete fuzz targets.
//
//   * hci_codec — arbitrary bytes through the H4 parser and every typed
//     HCI command/event decoder (codec_harness oracles).
//   * lmp_codec — arbitrary bytes through the LMP/ACL air-frame parsers
//     and typed payload decoders.
//   * stack     — the big one: each execution forks the warm bonded cell
//     from its in-memory .blapsnap snapshot and injects the input as an op
//     stream into the live controller+host state machines, with the PR-9
//     InvariantMonitor + drain + event-budget oracle
//     (snapshot/fuzz_trial.hpp).
//
// Construction cost is deliberately front-loaded: a StackTarget builds the
// scenario and runs the full SSP P-256 bonding exactly once, then every
// execute() is a snapshot fork — the ≥10x throughput edge
// bench_fuzz_throughput gates on.
#pragma once

#include "fuzz/target.hpp"
#include "snapshot/fuzz_trial.hpp"
#include "snapshot/scenarios.hpp"
#include "snapshot/snapshot.hpp"

namespace blap::fuzz {

/// Fixed scenario-build/trial seed for stack fuzzing. Constant on purpose:
/// a finding's replay bundle then depends only on the input bytes, never on
/// which campaign configuration happened to find it.
inline constexpr std::uint64_t kStackSeed = 1;

class HciCodecTarget final : public FuzzTarget {
 public:
  [[nodiscard]] const char* name() const override { return "hci_codec"; }
  [[nodiscard]] std::vector<Bytes> seed_inputs() const override;
  [[nodiscard]] ExecResult execute(BytesView input, FeatureSink& sink) override;
};

class LmpCodecTarget final : public FuzzTarget {
 public:
  [[nodiscard]] const char* name() const override { return "lmp_codec"; }
  [[nodiscard]] std::vector<Bytes> seed_inputs() const override;
  [[nodiscard]] std::size_t max_input_len() const override { return 256; }
  [[nodiscard]] ExecResult execute(BytesView input, FeatureSink& sink) override;
};

class StackTarget final : public FuzzTarget {
 public:
  /// Builds the bonded cell and captures the warm snapshot. Aborts only if
  /// the warm setup fails to reach strict quiescence — which the snapshot
  /// tests already gate.
  StackTarget();

  [[nodiscard]] const char* name() const override { return "stack"; }
  [[nodiscard]] std::vector<Bytes> seed_inputs() const override;
  [[nodiscard]] std::vector<Bytes> dictionary_extras() const override;
  [[nodiscard]] std::size_t max_input_len() const override { return 192; }
  [[nodiscard]] ExecResult execute(BytesView input, FeatureSink& sink) override;
  [[nodiscard]] std::optional<snapshot::ReplayBundle> make_bundle(
      BytesView input, const ExecResult& result) override;

  /// The warm snapshot executions fork from (exposed for the bench).
  [[nodiscard]] const snapshot::Snapshot& warm() const { return *warm_; }
  [[nodiscard]] snapshot::Scenario& scenario() { return scenario_; }

 private:
  snapshot::Scenario scenario_;
  std::optional<snapshot::Snapshot> warm_;
  /// Last execution's verdict, kept for make_bundle().
  snapshot::FuzzStackReport last_report_;
};

}  // namespace blap::fuzz
