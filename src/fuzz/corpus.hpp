// corpus.hpp — the fuzzer's input corpus and scheduler.
//
// A corpus is an insertion-ordered, content-deduplicated set of inputs.
// Insertion order *is* the determinism contract: entries are appended in
// the order the engine discovered them (seed inputs first, then every
// mutant that grew the coverage map), and the digest() fingerprint hashes
// entries in exactly that order — so two runs with the same seed produce
// the same digest, and CI can diff digests across BLAP_JOBS values.
//
// Scheduling is deliberately simple: pick() favours recent entries 50% of
// the time (newly found inputs sit near uncovered behaviour, the classic
// libFuzzer heuristic) and falls back to uniform otherwise.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace blap::fuzz {

class Corpus {
 public:
  /// Append `input` unless a byte-identical entry exists. Returns true when
  /// the entry is new.
  bool add(Bytes input);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const Bytes& entry(std::size_t index) const { return entries_[index]; }
  [[nodiscard]] const std::vector<Bytes>& entries() const { return entries_; }

  /// Pick an entry to mutate: 50% uniform over everything, 50% uniform over
  /// the most recent 8. Requires a non-empty corpus.
  [[nodiscard]] const Bytes& pick(Rng& rng) const;

  /// Hex SHA-256 over (count, then each entry length-prefixed) in insertion
  /// order — the campaign-level determinism fingerprint.
  [[nodiscard]] std::string digest() const;

 private:
  std::vector<Bytes> entries_;
  // Ordered set: dedup lookups must not depend on hash-table layout (D2).
  std::set<crypto::Sha256::Digest> hashes_;
};

}  // namespace blap::fuzz
