// codec_harness.hpp — shared codec round-trip oracles.
//
// One set of codec invariants, two consumers: the seeded gtest suite
// (tests/test_codec_fuzz.cpp) and the coverage-guided fuzz targets
// (fuzz_hci_codec / fuzz_lmp_codec). Keeping the check bodies here means
// the two can never drift — a property the gtest asserts and the fuzzer
// explores is, by construction, the same property.
//
// The invariants, per codec:
//
//   * round trip      — encode → parse wire → decode params → re-encode
//                       must reproduce the first wire bytes exactly.
//   * prefix rejects  — every strict prefix of a parameter block decodes
//                       to nullopt (truncation never yields partial data).
//   * padding tolerated — a valid block plus trailing garbage either
//                       rejects or decodes to the same value (leading
//                       fields, tail ignored — real controllers tolerate
//                       padded commands).
//   * canonical idempotence (arbitrary inputs) — whatever decode() accepts,
//                       re-encoding and decoding again is a fixed point.
//
// All checks return a CheckResult instead of asserting, so the fuzzer can
// treat a failure as a finding and the gtest can print the detail.
#pragma once

#include <optional>
#include <string>

#include "controller/lmp.hpp"
#include "fuzz/coverage.hpp"
#include "hci/packets.hpp"

namespace blap::fuzz {

struct CheckResult {
  bool ok = true;
  std::string detail;
};

[[nodiscard]] inline CheckResult check_fail(std::string detail) {
  return {false, std::move(detail)};
}

// --- structured round trips (gtest + fuzz seed validation) -------------------

/// H4 framing: to_wire → from_wire → to_wire is the identity.
[[nodiscard]] CheckResult check_h4_round_trip(const hci::HciPacket& packet);

/// LMP PDU framing: to_air_frame → from_air_frame → to_air_frame identity,
/// with opcode and payload preserved.
[[nodiscard]] CheckResult check_lmp_round_trip(const controller::LmpPdu& pdu);

namespace harness_detail {

/// Shared body for commands and events: `params_of` projects the reparsed
/// packet onto its parameter block.
template <typename T, typename ParamsFn>
CheckResult check_typed_round_trip(const T& value, const char* label, ParamsFn params_of) {
  const hci::HciPacket packet = value.encode();
  const Bytes wire = packet.to_wire();

  const auto reparsed = hci::HciPacket::from_wire(wire);
  if (!reparsed) return check_fail(std::string(label) + ": own wire failed to reparse");
  const std::optional<BytesView> params = params_of(*reparsed);
  if (!params) return check_fail(std::string(label) + ": no parameter block in own wire");

  const auto decoded = T::decode(*params);
  if (!decoded) return check_fail(std::string(label) + ": own parameters failed to decode");
  if (decoded->encode().to_wire() != wire)
    return check_fail(std::string(label) + ": re-encode differs from original wire");

  for (std::size_t cut = 0; cut < params->size(); ++cut) {
    if (T::decode(params->subspan(0, cut)).has_value())
      return check_fail(std::string(label) + ": strict prefix of " + std::to_string(cut) +
                        " bytes decoded");
  }

  // Trailing garbage: tolerated (decodes to the same value) or rejected —
  // but never a different value. A fixed tail keeps the harness
  // deterministic without threading an Rng through.
  Bytes padded = to_bytes(*params);
  for (std::size_t i = 0; i < 9; ++i)
    padded.push_back(static_cast<std::uint8_t>(0xA5 + 17 * i));
  if (const auto tolerant = T::decode(padded); tolerant.has_value()) {
    if (tolerant->encode().to_wire() != wire)
      return check_fail(std::string(label) + ": padded decode changed the value");
  }
  return {};
}

}  // namespace harness_detail

/// Full command-struct contract: round trip + prefix rejection + padding
/// tolerance, through the real H4 wire form.
template <typename Cmd>
[[nodiscard]] CheckResult check_command_round_trip(const Cmd& cmd,
                                                   const char* label = "command") {
  return harness_detail::check_typed_round_trip(
      cmd, label, [](const hci::HciPacket& p) { return p.command_params(); });
}

/// Full event-struct contract (same shape as commands).
template <typename Evt>
[[nodiscard]] CheckResult check_event_round_trip(const Evt& evt,
                                                 const char* label = "event") {
  return harness_detail::check_typed_round_trip(
      evt, label, [](const hci::HciPacket& p) { return p.event_params(); });
}

// --- arbitrary-input probes (fuzz targets) -----------------------------------

/// Feed arbitrary bytes through the H4 parser and every typed HCI decoder
/// whose opcode/event code matches. Asserts canonical idempotence for
/// whatever the decoders accept, plus header/length consistency for ACL
/// packets. Emits shape features to `sink` when non-null.
[[nodiscard]] CheckResult check_hci_wire(BytesView wire, FeatureSink* sink);

/// Same for the LMP/ACL air-frame surface: framing parse, typed payload
/// decoders (IO capability, encapsulated public key, not-accepted),
/// canonical idempotence.
[[nodiscard]] CheckResult check_lmp_frame(BytesView frame, FeatureSink* sink);

}  // namespace blap::fuzz
