#include "fuzz/coverage.hpp"

#include "common/sancov_registry.hpp"

namespace blap::fuzz {
namespace {

/// SplitMix64 finalizer — same mixer the campaign seeding uses, good enough
/// to spread structured (domain, value) pairs across the feature space.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint32_t feature_hash(std::uint8_t domain, std::uint64_t value) {
  const std::uint64_t mixed = mix64((static_cast<std::uint64_t>(domain) << 56) ^ value);
  return static_cast<std::uint32_t>(mixed) % kFeatureSpace;
}

std::uint8_t count_bucket(std::uint8_t count) {
  if (count == 0) return 0;
  if (count < 4) return count;        // 1, 2, 3 each their own bucket
  if (count < 8) return 4;
  if (count < 16) return 5;
  if (count < 32) return 6;
  if (count < 128) return 7;
  return 8;
}

std::size_t CoverageMap::accumulate(const FeatureSink& sink) {
  std::size_t fresh = 0;
  for (const std::uint32_t f : sink.features())
    if (mark(f)) ++fresh;
  return fresh;
}

bool CoverageMap::mark(std::uint32_t feature) {
  feature %= kFeatureSpace;
  std::uint8_t& byte = seen_[feature >> 3];
  const std::uint8_t bit = static_cast<std::uint8_t>(1u << (feature & 7));
  if ((byte & bit) != 0) return false;
  byte |= bit;
  ++count_;
  return true;
}

bool sancov_active() { return !sancov_modules().empty(); }

void collect_sancov_features(FeatureSink& sink) {
  std::uint64_t edge_base = 0;
  for (const SancovModule& module : sancov_modules()) {
    std::uint8_t* counter = module.start;
    for (std::uint64_t edge = 0; counter != module.stop; ++counter, ++edge) {
      if (*counter != 0) {
        // Feature = (global edge index, log2 count bucket), libFuzzer-style.
        sink.hash(0xC0, ((edge_base + edge) << 8) | count_bucket(*counter));
        *counter = 0;  // reset for the next execution
      }
    }
    edge_base += static_cast<std::uint64_t>(module.stop - module.start);
  }
}

}  // namespace blap::fuzz
