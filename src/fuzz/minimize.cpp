#include "fuzz/minimize.hpp"

#include <algorithm>

namespace blap::fuzz {

Bytes minimize_finding(FuzzTarget& target, Bytes input, const std::string& kind,
                       std::size_t max_execs, MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;
  st = {};

  const auto still_finds = [&](const Bytes& candidate) {
    if (candidate.empty()) return false;
    ++st.executions;
    FeatureSink sink;
    const ExecResult r = target.execute(candidate, sink);
    return r.finding && r.kind == kind;
  };

  // Halving chunk sizes; at each size, sweep left to right deleting
  // [pos, pos+chunk). On a successful deletion the position is *not*
  // advanced — the bytes that slid into `pos` get their own chance.
  for (std::size_t chunk = std::max<std::size_t>(input.size() / 2, 1); chunk >= 1;
       chunk /= 2) {
    std::size_t pos = 0;
    while (pos < input.size() && input.size() > 1) {
      if (st.executions >= max_execs) return input;
      Bytes candidate;
      candidate.reserve(input.size());
      candidate.insert(candidate.end(), input.begin(),
                       input.begin() + static_cast<std::ptrdiff_t>(pos));
      const std::size_t cut_end = std::min(pos + chunk, input.size());
      candidate.insert(candidate.end(),
                       input.begin() + static_cast<std::ptrdiff_t>(cut_end),
                       input.end());
      if (still_finds(candidate)) {
        input = std::move(candidate);
        ++st.reductions;
      } else {
        pos += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return input;
}

}  // namespace blap::fuzz
