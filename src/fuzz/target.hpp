// target.hpp — the fuzz-target interface.
//
// A FuzzTarget is one attack surface under test: it owns whatever fixed
// machinery the surface needs (for the stack target, a built scenario and
// its warm bonded snapshot), turns one input byte-string into one
// execution, and reports two things back — the features the execution
// touched (via the FeatureSink) and whether it was a *finding*.
//
// A finding is anything the oracle calls a bug: a failed codec round-trip
// invariant, a tripped cross-layer invariant, a stuck (undrained) stack, a
// runaway scheduler. Crashes don't need classifying — the process dies and
// the driver's exit status is the report.
//
// Targets are built per fuzzing shard through a TargetFactory, so shards
// never share mutable state and the engine parallelises without locks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "fuzz/coverage.hpp"
#include "snapshot/replay.hpp"

namespace blap::fuzz {

/// What one execution concluded.
struct ExecResult {
  bool finding = false;
  /// Stable finding class ("codec-round-trip", "invariant-violation",
  /// "stuck", "runaway"): the minimiser only accepts reductions that keep
  /// the kind, so it cannot wander onto a different bug.
  std::string kind;
  std::string detail;
};

class FuzzTarget {
 public:
  virtual ~FuzzTarget() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Inputs the corpus starts from — small, valid packets that already
  /// parse, so mutation starts at the interesting boundary instead of in
  /// random noise.
  [[nodiscard]] virtual std::vector<Bytes> seed_inputs() const = 0;

  /// Target-specific dictionary tokens appended to Dictionary::bluetooth()
  /// (e.g. the live scenario's BD_ADDRs).
  [[nodiscard]] virtual std::vector<Bytes> dictionary_extras() const { return {}; }

  [[nodiscard]] virtual std::size_t max_input_len() const { return 512; }

  /// Run one input. Deterministic: same input, same result, same features.
  [[nodiscard]] virtual ExecResult execute(BytesView input, FeatureSink& sink) = 0;

  /// Package the last execute() of `input` as a self-contained replay
  /// bundle, for targets whose executions are snapshot-forked simulations.
  /// Works for findings (the fuzz driver's --findings-dir) and for clean
  /// verdicts (make_corpus pins post-fix regression gates). Codec targets
  /// return nullopt — their findings reproduce from the raw input bytes
  /// alone.
  [[nodiscard]] virtual std::optional<snapshot::ReplayBundle> make_bundle(
      BytesView /*input*/, const ExecResult& /*result*/) {
    return std::nullopt;
  }
};

using TargetFactory = std::function<std::unique_ptr<FuzzTarget>()>;

/// Factory registry: "hci_codec", "lmp_codec", "stack". Null for unknown
/// names.
[[nodiscard]] TargetFactory resolve_target(const std::string& name);

/// The registered target names, in registry order.
[[nodiscard]] std::vector<std::string> target_names();

}  // namespace blap::fuzz
