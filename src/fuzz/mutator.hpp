// mutator.hpp — deterministic byte/field mutators for the protocol fuzzer.
//
// The mutation engine is a small, fixed repertoire of byte-level and
// field-aware transforms, stacked 1..4 deep per call, driven entirely by a
// SplitMix64-seeded Rng: the same seed and the same inputs produce the same
// mutants on every machine and every run. Field-aware pieces:
//
//   * dictionary — HCI opcodes (little-endian, as they sit in a command
//     header), event codes, H4 type bytes, LMP opcodes and air-channel
//     bytes, plus per-target extras (the live scenario's BD_ADDRs and
//     connection handles). A random token is inserted or stamped over the
//     input, which is how the fuzzer forges "almost valid" headers far
//     faster than blind bit flips would.
//   * length-field targeting — Bluetooth framing carries explicit length
//     bytes (command header byte 2, event header byte 1, ACL u16). A
//     dedicated mutation rewrites one byte to a boundary-interesting
//     length: 0, 1, the true remaining size, or just past it.
//   * splice — classic corpus crossover: head of the input, tail of a
//     random corpus entry.
//
// No wall clock, no global state: a Mutator is owned by one fuzzing shard.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace blap::fuzz {

/// The token dictionary. bluetooth() builds the protocol-wide base set;
/// targets append scenario extras (their devices' BD_ADDRs, live handles).
struct Dictionary {
  std::vector<Bytes> tokens;

  /// HCI opcodes + event codes + H4 types + LMP opcodes + air channels +
  /// interesting lengths. Deterministic, order fixed.
  [[nodiscard]] static Dictionary bluetooth();
};

class Mutator {
 public:
  explicit Mutator(std::uint64_t seed, Dictionary dictionary = Dictionary::bluetooth());

  /// Produce one mutant of `input`. `corpus_pool` feeds the splice
  /// mutation (may be empty). Result is non-empty and at most `max_len`
  /// bytes. Deterministic in (seed, call sequence).
  [[nodiscard]] Bytes mutate(BytesView input, const std::vector<Bytes>& corpus_pool,
                             std::size_t max_len);

  [[nodiscard]] const Dictionary& dictionary() const { return dictionary_; }
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  void one_mutation(Bytes& data, const std::vector<Bytes>& corpus_pool);

  Rng rng_;
  Dictionary dictionary_;
};

}  // namespace blap::fuzz
