// minimize.hpp — deterministic finding minimisation.
//
// A raw finding input is a mutation pile-up: most of its bytes are inert.
// minimize_finding() greedily deletes chunks (halving chunk sizes,
// ddmin-style) and keeps a deletion only when the reduced input still
// produces a finding of the *same kind* — so minimisation can shrink a
// stuck-stack input but never silently wander onto a different bug class.
//
// Properties the tests pin:
//   * deterministic — no randomness; the reduction sequence is a pure
//     function of (input, target behaviour).
//   * budgeted — at most `max_execs` target executions, so a pathological
//     input cannot stall a campaign.
//   * idempotent — minimising an already-minimal input returns it
//     unchanged (every single-chunk deletion already fails to reproduce).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "fuzz/target.hpp"

namespace blap::fuzz {

struct MinimizeStats {
  /// Target executions spent.
  std::size_t executions = 0;
  /// Deletions that kept the finding.
  std::size_t reductions = 0;
};

/// Shrink `input` while `target` still reports a finding of kind `kind`.
/// Returns the reduced input (possibly `input` itself when nothing can go).
[[nodiscard]] Bytes minimize_finding(FuzzTarget& target, Bytes input,
                                     const std::string& kind, std::size_t max_execs,
                                     MinimizeStats* stats = nullptr);

}  // namespace blap::fuzz
