#include "fuzz/corpus.hpp"

#include <algorithm>

namespace blap::fuzz {

bool Corpus::add(Bytes input) {
  if (!hashes_.insert(crypto::Sha256::hash(input)).second) return false;
  entries_.push_back(std::move(input));
  return true;
}

const Bytes& Corpus::pick(Rng& rng) const {
  // Recent-biased scheduling; see the header. Both branches draw from rng
  // even when the corpus is small so the draw sequence stays stable as the
  // corpus grows past the recency window.
  const bool recent = rng.chance(0.5);
  const std::size_t window = recent ? std::min<std::size_t>(entries_.size(), 8)
                                    : entries_.size();
  const std::size_t base = entries_.size() - window;
  return entries_[base + rng.uniform(window)];
}

std::string Corpus::digest() const {
  crypto::Sha256 sha;
  ByteWriter w;
  w.u64(entries_.size());
  sha.update(w.data());
  for (const Bytes& entry : entries_) {
    ByteWriter len;
    len.u64(entry.size());
    sha.update(len.data());
    sha.update(entry);
  }
  return hex(sha.finish());
}

}  // namespace blap::fuzz
