// coverage.hpp — the in-process coverage map that makes the fuzzer guided.
//
// A coverage-guided fuzzer keeps an input if executing it exercised
// something no earlier input exercised. "Something" is a 32-bit *feature*:
// an opaque point in behaviour space. Two feature sources feed the same
// map:
//
//   * sancov counters — when the toolchain supports clang's
//     -fsanitize-coverage=inline-8bit-counters (CMake option
//     BLAP_FUZZ_SANCOV), every compiled edge gets an 8-bit execution
//     counter. After each execution the harness folds (edge index, count
//     bucket) pairs into features, libFuzzer-style.
//   * portable fallback — without instrumentation (the default GCC build),
//     targets emit features by hand from what they can observe: decoded
//     packet shapes, Observer metric counters, controller/host
//     state-transition hashes. Strictly coarser than edge coverage, but
//     the scheduler stays genuinely guided: inputs that reach new decode
//     paths or drive the stack into new states are kept.
//
// The map itself is a flat seen-bitmap over a 2^21 feature space; counts
// are bucketed by log2 (1, 2, 3, 4-7, 8-15, ...) so "this loop ran 100x
// instead of 1x" is a new feature but 100 vs 101 is not. Everything here
// is deterministic and wall-clock free: the same input sequence grows the
// same map on any machine and any BLAP_JOBS value.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace blap::fuzz {

/// Feature space size. 2 MiB of bitmap per map; collisions are acceptable
/// (they only make the scheduler slightly blinder, never wrong).
inline constexpr std::uint32_t kFeatureSpace = 1u << 21;

/// Mix an (8-bit domain, 64-bit value) pair into the feature space. Domains
/// keep unrelated sources (opcode reached, state hash, metric counter) from
/// colliding systematically.
[[nodiscard]] std::uint32_t feature_hash(std::uint8_t domain, std::uint64_t value);

/// Bucket an execution count the way libFuzzer does: 1, 2, 3, 4-7, 8-15,
/// 16-31, 32-127, 128+. Returns 0 for a zero count.
[[nodiscard]] std::uint8_t count_bucket(std::uint8_t count);

/// Collects the features one execution produced. Targets call feature()
/// during execute(); the engine drains the sink into its CoverageMap after
/// the run.
class FeatureSink {
 public:
  void feature(std::uint32_t f) { features_.push_back(f % kFeatureSpace); }

  /// Convenience: feature_hash() then feature().
  void hash(std::uint8_t domain, std::uint64_t value) {
    feature(feature_hash(domain, value));
  }

  void clear() { features_.clear(); }
  [[nodiscard]] const std::vector<std::uint32_t>& features() const { return features_; }

 private:
  std::vector<std::uint32_t> features_;
};

/// The seen-feature bitmap. One per fuzzing shard (maps are never shared
/// between threads; shard maps merge deterministically by re-accumulation).
class CoverageMap {
 public:
  CoverageMap() : seen_(kFeatureSpace / 8, 0) {}

  /// Mark every feature in `sink`; returns how many were new. Monotone:
  /// feature_count() never decreases, and re-accumulating the same sink
  /// adds exactly zero.
  std::size_t accumulate(const FeatureSink& sink);

  /// Mark a single feature; returns true if it was new.
  bool mark(std::uint32_t feature);

  [[nodiscard]] std::size_t feature_count() const { return count_; }

 private:
  std::vector<std::uint8_t> seen_;  // bitmap, kFeatureSpace bits
  std::size_t count_ = 0;
};

// --- sancov glue -------------------------------------------------------------
// Compiled into the library unconditionally; the __sanitizer_cov_* hooks are
// only *defined* when BLAP_FUZZ_SANCOV is set (they would collide with the
// real sanitizer runtime otherwise). Without instrumentation sancov_active()
// is false and collect_sancov_features() is a no-op, so the portable
// fallback features are the only guidance — by design.

/// True when at least one instrumented module registered its counters.
[[nodiscard]] bool sancov_active();

/// Fold every non-zero 8-bit counter into (edge index, count bucket)
/// features, then zero the counters for the next execution.
void collect_sancov_features(FeatureSink& sink);

}  // namespace blap::fuzz
