#include "analytics/corpus.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>

#include "analytics/detector.hpp"
#include "campaign/campaign.hpp"
#include "common/log.hpp"
#include "core/mitigations.hpp"
#include "core/page_blocking.hpp"
#include "obs/obs.hpp"
#include "snapshot/scenarios.hpp"

namespace blap::analytics {
namespace {

using core::Simulation;
using snapshot::Scenario;

/// One generated capture: its serialized bytes and ground-truth labels.
struct TrialOutput {
  Bytes snoop;
  std::set<std::string> labels;
  bool ok = false;  // false voids the file (scenario outcome unusable)
};

snapshot::ScenarioParams extraction_params() {
  snapshot::ScenarioParams params;
  params.kind = snapshot::ScenarioParams::Kind::kExtraction;
  params.table = snapshot::ProfileTable::kTable1;
  params.profile_index = 0;
  return params;
}

/// Victim-initiated pairing with the accessory; the benign Fig. 12a flow.
hci::Status pair_once(Scenario& s, SimTime window) {
  bool done = false;
  hci::Status status = hci::Status::kConnectionTimeout;
  s.target->host().pair(s.accessory->address(), [&](hci::Status st) {
    done = true;
    status = st;
  });
  s.sim->run_for(window);
  return done ? status : hci::Status::kConnectionTimeout;
}

std::uint64_t observed_counter(Scenario& s, std::string_view name) {
  obs::Observer* obs = s.sim->observer();
  if (obs == nullptr) return 0;
  const auto snapshot = obs->snapshot();
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

TrialOutput finish_trial(Scenario& s, std::set<std::string> labels, bool ok) {
  TrialOutput out;
  out.snoop = s.target->host().snoop().serialize();
  out.labels = std::move(labels);
  out.ok = ok;
  return out;
}

TrialOutput benign_filtered_trial(std::uint64_t seed) {
  Scenario s = snapshot::build_scenario(seed, extraction_params());
  core::apply_snoop_filter(*s.target, core::SnoopFilterMode::kHeaderOnly);
  s.target->host().enable_snoop(true);
  const hci::Status status = pair_once(s, 30 * kSecond);
  return finish_trial(s, {}, status == hci::Status::kSuccess);
}

TrialOutput benign_lossy_trial(std::uint64_t seed) {
  Scenario s = snapshot::build_scenario(seed, extraction_params());
  obs::ObsConfig obs_cfg;
  obs_cfg.metrics = true;
  s.sim->enable_observability(obs_cfg);
  faults::FaultPlan plan;
  plan.seed = seed;
  plan.loss = 0.05;
  s.sim->set_fault_plan(plan);
  core::apply_snoop_filter(*s.target, core::SnoopFilterMode::kHeaderOnly);
  s.target->host().enable_snoop(true);
  (void)pair_once(s, 120 * kSecond);
  // Honest labelling: mild loss occasionally escalates into a real retry
  // storm, and the manifest must say so when it does.
  std::set<std::string> labels;
  if (observed_counter(s, "host.pairing_retries") >= 2)
    labels.insert(std::string(kPairingRetryStorm));
  return finish_trial(s, std::move(labels), true);
}

TrialOutput plaintext_key_trial(std::uint64_t seed) {
  Scenario s = snapshot::build_scenario(seed, extraction_params());
  s.target->host().enable_snoop(true);  // unfiltered: the §IV-A exposure
  const hci::Status status = pair_once(s, 30 * kSecond);
  std::set<std::string> labels;
  if (status == hci::Status::kSuccess) labels.insert(std::string(kPlaintextLinkKey));
  return finish_trial(s, std::move(labels), status == hci::Status::kSuccess);
}

/// Synthetic attacker-tool capture: a Read_Stored_Link_Key sweep and the
/// Return_Link_Keys bond dump it triggers, between benign inquiry traffic.
/// No simulation — the log is built record by record, like the tooling the
/// paper's extraction pipeline scrapes.
TrialOutput key_sweep_trial(std::uint64_t seed) {
  hci::SnoopLog log;
  SimTime t = 1000;
  auto add = [&](hci::Direction dir, const hci::HciPacket& packet) {
    hci::SnoopRecord record;
    record.timestamp_us = t;
    record.direction = dir;
    record.packet = packet;
    log.append(record);
    t += 1250;
  };
  ByteWriter inquiry;
  inquiry.u8(0x33).u8(0x8b).u8(0x9e);  // GIAC LAP
  inquiry.u8(8).u8(0);                 // length, unlimited responses
  add(hci::Direction::kHostToController, hci::make_command(hci::op::kInquiry, inquiry.data()));
  ByteWriter inquiry_done;
  inquiry_done.u8(0x00);
  add(hci::Direction::kControllerToHost,
      hci::make_event(hci::ev::kInquiryComplete, inquiry_done.data()));

  ByteWriter sweep;
  BdAddr().to_wire(sweep);  // BD_ADDR ignored when Read_All_Flag is set
  sweep.u8(0x01);           // Read_All_Flag
  add(hci::Direction::kHostToController,
      hci::make_command(hci::op::kReadStoredLinkKey, sweep.data()));

  std::uint64_t stream = seed;
  const std::size_t num_keys = 1 + campaign::splitmix64(stream) % 3;
  ByteWriter dump;
  dump.u8(static_cast<std::uint8_t>(num_keys));
  for (std::size_t k = 0; k < num_keys; ++k) {
    std::array<std::uint8_t, BdAddr::kSize> addr{};
    std::uint64_t a = campaign::splitmix64(stream);
    for (auto& b : addr) {
      b = static_cast<std::uint8_t>(a);
      a >>= 8;
    }
    BdAddr(addr).to_wire(dump);
    for (std::size_t i = 0; i < 16; i += 8) {
      const std::uint64_t word = campaign::splitmix64(stream);
      dump.u64(word);
      (void)i;
    }
  }
  // blap-taint: declassified — plaintext-key snoop corpus generator: this trial
  // exists to hand blap-snoopd a Return_Link_Keys dump to detect
  add(hci::Direction::kControllerToHost,
      hci::make_event(hci::ev::kReturnLinkKeys, dump.data()));
  TrialOutput out;
  out.snoop = log.serialize();
  out.labels.insert(std::string(kPlaintextLinkKey));
  out.ok = true;
  return out;
}

TrialOutput page_blocking_trial(std::uint64_t seed) {
  snapshot::ScenarioParams params;
  params.kind = snapshot::ScenarioParams::Kind::kAbc;
  params.table = snapshot::ProfileTable::kTable2;
  params.profile_index = 0;
  params.accessory_transport = core::TransportKind::kUart;
  params.accessory_has_dump = true;
  Scenario s = snapshot::build_scenario(seed, params);
  // No enable_snoop here: the attack itself force-enables the victim dump
  // (that dump existing is precondition to the paper's extraction step).
  const auto report =
      core::PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  // Ground truth from the simulation outcome, not from the dump: the
  // page-blocking label means the victim's pairing actually landed on the
  // attacker over the held PLOC.
  std::set<std::string> labels;
  if (report.mitm_established) labels.insert(std::string(kPageBlocking));
  if (report.pairing_completed) labels.insert(std::string(kPlaintextLinkKey));
  return finish_trial(s, std::move(labels), report.ploc_established);
}

TrialOutput ssp_downgrade_trial(std::uint64_t seed) {
  Scenario s = snapshot::build_scenario(seed, extraction_params());
  core::apply_snoop_filter(*s.target, core::SnoopFilterMode::kHeaderOnly);
  s.target->host().enable_snoop(true);
  const hci::Status first = pair_once(s, 30 * kSecond);
  // The user "re-pairs with the car kit": bonds drop on both sides and the
  // device answering to C's address now advertises NoInputNoOutput.
  s.target->host().security().remove_bond(s.accessory->address());
  s.accessory->host().security().remove_bond(s.target->address());
  s.accessory->host().config().io_capability = hci::IoCapability::kNoInputNoOutput;
  const hci::Status second = pair_once(s, 30 * kSecond);
  const bool ok = first == hci::Status::kSuccess && second == hci::Status::kSuccess;
  std::set<std::string> labels;
  if (ok) labels.insert(std::string(kSspDowngrade));
  return finish_trial(s, std::move(labels), ok);
}

TrialOutput retry_storm_trial(std::uint64_t seed) {
  Scenario s = snapshot::build_scenario(seed, extraction_params());
  obs::ObsConfig obs_cfg;
  obs_cfg.metrics = true;
  s.sim->enable_observability(obs_cfg);
  // A long jam plus moderate loss: every page inside the jam dies on a
  // timeout, the host's retry-with-backoff keeps re-running the pair op,
  // and each dead attempt leaves a failed Connection_Complete in the dump.
  // (Pure iid loss is the wrong tool here — baseband ARQ absorbs it without
  // the pair op ever failing, so no host-level retries happen.)
  faults::FaultPlan plan;
  plan.seed = seed;
  plan.loss = 0.10;
  plan.jam_windows.push_back({0, 90 * kSecond});
  s.sim->set_fault_plan(plan);
  // A stormier budget than the default 3-attempt policy, as a stack whose
  // user keeps mashing "pair" would show.
  s.target->host().security().set_retry_policy({.max_attempts = 6,
                                                .initial_backoff = kSecond});
  core::apply_snoop_filter(*s.target, core::SnoopFilterMode::kHeaderOnly);
  s.target->host().enable_snoop(true);
  (void)pair_once(s, 600 * kSecond);
  std::set<std::string> labels;
  if (observed_counter(s, "host.pairing_retries") >= 2)
    labels.insert(std::string(kPairingRetryStorm));
  return finish_trial(s, std::move(labels), true);
}

struct ClassSpec {
  std::string name;
  std::function<TrialOutput(std::uint64_t)> trial;
};

const std::vector<ClassSpec>& corpus_classes() {
  static const std::vector<ClassSpec> classes = {
      {"benign_filtered", benign_filtered_trial},
      {"benign_lossy", benign_lossy_trial},
      {"plaintext_key", plaintext_key_trial},
      {"key_sweep", key_sweep_trial},
      {"page_blocking", page_blocking_trial},
      {"ssp_downgrade", ssp_downgrade_trial},
      {"retry_storm", retry_storm_trial},
  };
  return classes;
}

}  // namespace

const std::vector<std::string>& corpus_class_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& spec : corpus_classes()) out.push_back(spec.name);
    return out;
  }();
  return names;
}

std::optional<CorpusSummary> generate_corpus(const CorpusOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) return std::nullopt;

  CorpusSummary summary;
  struct ManifestEntry {
    std::string file;
    std::set<std::string> labels;
    bool written = false;
  };
  std::vector<ManifestEntry> manifest;
  bool write_failed = false;

  const auto& classes = corpus_classes();
  for (std::size_t class_index = 0; class_index < classes.size(); ++class_index) {
    const ClassSpec& spec = classes[class_index];
    campaign::CampaignConfig cfg;
    cfg.label = "corpus " + spec.name;
    cfg.trials = options.files_per_class;
    cfg.jobs = options.jobs;
    // Distinct seed stream per class, derived from the corpus root.
    cfg.root_seed = campaign::trial_seed(options.root_seed, class_index);

    std::vector<ManifestEntry> slots(options.files_per_class);
    campaign::run_campaign(cfg, [&](const campaign::TrialSpec& trial) {
      campaign::TrialResult result;
      TrialOutput out = spec.trial(trial.seed);
      ManifestEntry& entry = slots[trial.index];
      if (!out.ok) return result;  // voided trial: no file, no manifest row
      entry.file = strfmt("%s_%04zu.btsnoop", spec.name.c_str(), trial.index);
      entry.labels = std::move(out.labels);
      std::ofstream file(options.dir + "/" + entry.file, std::ios::binary);
      file.write(reinterpret_cast<const char*>(out.snoop.data()),
                 static_cast<std::streamsize>(out.snoop.size()));
      file.flush();
      entry.written = static_cast<bool>(file);
      result.success = entry.written;
      return result;
    });
    for (auto& entry : slots) {
      if (!entry.written) {
        if (entry.file.empty()) ++summary.trials_failed;
        else write_failed = true;
        continue;
      }
      ++summary.files_written;
      ++summary.files_per_class[spec.name];
      for (const auto& label : entry.labels) ++summary.files_per_label[label];
      manifest.push_back(std::move(entry));
    }
  }
  if (write_failed) return std::nullopt;

  std::sort(manifest.begin(), manifest.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) { return a.file < b.file; });
  std::ofstream labels_out(options.dir + "/labels.jsonl");
  for (const auto& entry : manifest) {
    labels_out << "{\"file\": \"" << entry.file << "\", \"labels\": [";
    bool first = true;
    for (const auto& label : entry.labels) {
      if (!first) labels_out << ", ";
      first = false;
      labels_out << '"' << label << '"';
    }
    labels_out << "]}\n";
  }
  labels_out.flush();
  if (!labels_out) return std::nullopt;
  return summary;
}

}  // namespace blap::analytics
