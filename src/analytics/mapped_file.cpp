#include "analytics/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <utility>

namespace blap::analytics {

std::optional<MappedFile> MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return std::nullopt;
  }
  MappedFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ == 0) {
    ::close(fd);
    return file;  // empty view; mmap of length 0 is EINVAL
  }
  void* base = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (base != MAP_FAILED) {
    file.data_ = base;
    file.mapped_ = true;
    ::close(fd);
    return file;
  }
  ::close(fd);
  // Fallback: buffered read (keeps the engine working where mmap isn't).
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  file.fallback_.resize(file.size_);
  in.read(reinterpret_cast<char*>(file.fallback_.data()),
          static_cast<std::streamsize>(file.size_));
  if (!in) return std::nullopt;
  file.data_ = file.fallback_.data();
  return file;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && !fallback_.empty()) data_ = fallback_.data();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (mapped_ && data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && !fallback_.empty()) data_ = fallback_.data();
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (mapped_ && data_ != nullptr) ::munmap(data_, size_);
}

}  // namespace blap::analytics
