// mapped_file.hpp — read-only memory mapping for the fleet snoop reader.
//
// The analytics engine walks thousands of capture files per run; reading
// each into a std::vector would double the memory traffic before the parser
// even starts. MappedFile mmaps the file read-only and hands out a BytesView
// over the mapping, so SnoopCursor iterates records straight out of the page
// cache with zero copies. Falls back to a plain read when mmap is
// unavailable (empty files, exotic filesystems), so callers never care.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace blap::analytics {

class MappedFile {
 public:
  /// Map `path` read-only. nullopt when the file cannot be opened or
  /// stat'd; an empty file maps successfully to an empty view.
  [[nodiscard]] static std::optional<MappedFile> open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] BytesView view() const {
    return {static_cast<const std::uint8_t*>(data_), size_};
  }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  MappedFile() = default;

  void* data_ = nullptr;   // mmap base, nullptr when fallback_ holds the bytes
  std::size_t size_ = 0;
  bool mapped_ = false;
  Bytes fallback_;
};

}  // namespace blap::analytics
