#include "analytics/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "analytics/mapped_file.hpp"
#include "campaign/campaign.hpp"

namespace blap::analytics {
namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof buf) {
    va_end(args_copy);
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  std::vector<char> big(static_cast<std::size_t>(n) + 1);
  std::vsnprintf(big.data(), big.size(), fmt, args_copy);
  va_end(args_copy);
  out.append(big.data(), static_cast<std::size_t>(n));
}

void append_double(std::string& out, double v) { append_fmt(out, "%.6f", v); }

std::string base_name(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool is_header_fault(const hci::SnoopFault& fault) {
  switch (fault.error) {
    case hci::SnoopError::kTruncatedFileHeader:
    case hci::SnoopError::kBadMagic:
    case hci::SnoopError::kBadVersion:
    case hci::SnoopError::kBadDatalink:
      return true;
    default:
      return false;
  }
}

// --- labels.jsonl micro-parser ---------------------------------------------
// The manifest is machine-written (corpus.cpp / campaign_sweep), so the
// parser accepts exactly that shape: one object per line with a "file"
// string and a "labels" string array. Any other shape fails the whole load —
// a silently half-read manifest would corrupt the precision/recall table.

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

std::optional<std::string> read_json_string(std::string_view s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return std::nullopt;
  std::string out;
  for (++i; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return out;
    }
    if (c == '\\') {
      if (++i >= s.size()) return std::nullopt;
      switch (s[i]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: return std::nullopt;  // \uXXXX etc.: not emitted by our writer
      }
      continue;
    }
    out += c;
  }
  return std::nullopt;  // unterminated
}

/// Position just past `"key":`, or nullopt.
std::optional<std::size_t> after_key(std::string_view s, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\"";
  const std::size_t at = s.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  skip_ws(s, i);
  if (i >= s.size() || s[i] != ':') return std::nullopt;
  ++i;
  skip_ws(s, i);
  return i;
}

bool parse_label_line(std::string_view line, LabelMap& out) {
  auto file_at = after_key(line, "file");
  if (!file_at) return false;
  std::size_t i = *file_at;
  auto file = read_json_string(line, i);
  if (!file || file->empty()) return false;
  auto labels_at = after_key(line, "labels");
  if (!labels_at) return false;
  i = *labels_at;
  if (i >= line.size() || line[i] != '[') return false;
  ++i;
  std::set<std::string> labels;
  skip_ws(line, i);
  if (i < line.size() && line[i] == ']') {
    out[*file] = std::move(labels);
    return true;
  }
  for (;;) {
    skip_ws(line, i);
    auto label = read_json_string(line, i);
    if (!label) return false;
    labels.insert(std::move(*label));
    skip_ws(line, i);
    if (i >= line.size()) return false;
    if (line[i] == ']') break;
    if (line[i] != ',') return false;
    ++i;
  }
  out[*file] = std::move(labels);
  return true;
}

}  // namespace

std::optional<LabelMap> load_labels(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  LabelMap out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!parse_label_line(line, out)) return std::nullopt;
  }
  return out;
}

double DetectorScore::precision() const {
  const std::size_t denom = tp + fp;
  return denom == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double DetectorScore::recall() const {
  const std::size_t denom = tp + fn;
  return denom == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

FileReport analyze_file(const std::string& path,
                        std::vector<std::unique_ptr<Detector>>& detectors) {
  FileReport report;
  report.path = path;
  report.name = base_name(path);
  obs::MetricsRegistry metrics;
  auto file = MappedFile::open(path);
  if (!file) {
    metrics.add("snoop.files.unreadable");
    report.metrics = metrics.snapshot();
    return report;
  }
  report.opened = true;
  report.bytes = file->size();
  metrics.add("snoop.files");
  metrics.add("snoop.bytes", file->size());
  hci::SnoopFault header_fault;
  auto cursor = hci::SnoopCursor::open(file->view(), &header_fault);
  if (!cursor) {
    report.fault = header_fault;
    metrics.add("snoop.files.faulted");
    report.metrics = metrics.snapshot();
    return report;
  }
  while (auto view = cursor->next()) {
    ++report.records;
    metrics.add("snoop.records");
    if (view->payload_truncated()) metrics.add("snoop.records.truncated_payload");
    const RecordCtx ctx = RecordCtx::from_view(*view);
    if (!ctx.type) {
      metrics.add("snoop.records.unknown");
    } else {
      switch (*ctx.type) {
        case hci::PacketType::kCommand: metrics.add("snoop.records.cmd"); break;
        case hci::PacketType::kEvent: metrics.add("snoop.records.evt"); break;
        case hci::PacketType::kAclData: metrics.add("snoop.records.acl"); break;
        case hci::PacketType::kScoData: metrics.add("snoop.records.sco"); break;
      }
    }
    for (auto& detector : detectors) detector->on_record(ctx);
  }
  for (auto& detector : detectors) detector->finish(report.findings);
  // Stable by frame: equal frames keep the fixed detector order.
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) { return a.frame < b.frame; });
  if (!cursor->fault().ok()) {
    report.fault = cursor->fault();
    metrics.add("snoop.files.faulted");
  }
  for (const auto& finding : report.findings)
    metrics.add("detect." + finding.detector);
  report.metrics = metrics.snapshot();
  return report;
}

FleetReport analyze_files(std::vector<std::string> paths, const FleetConfig& config,
                          const LabelMap* labels) {
  std::sort(paths.begin(), paths.end(), [](const std::string& a, const std::string& b) {
    const std::string an = base_name(a);
    const std::string bn = base_name(b);
    return an != bn ? an < bn : a < b;
  });

  std::vector<FileReport> slots(paths.size());
  const unsigned jobs = paths.empty()
                            ? 1
                            : std::min<unsigned>(campaign::resolve_jobs(config.jobs),
                                                 static_cast<unsigned>(paths.size()));
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    // One detector set per worker, reused file to file (finish() resets).
    auto detectors = make_default_detectors(config.detectors);
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= paths.size()) break;
      slots[i] = analyze_file(paths[i], detectors);
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  FleetReport report;
  for (const auto& name : default_detector_names())
    report.findings_per_detector[name] = 0;
  for (const auto& file : slots) {
    if (!file.opened || is_header_fault(file.fault)) {
      ++report.files_failed;
    } else {
      ++report.files_scanned;
    }
    report.bytes_total += file.bytes;
    report.records_total += file.records;
    report.metrics.merge_from(file.metrics);
    for (const auto& finding : file.findings) {
      ++report.findings_total;
      ++report.findings_per_detector[finding.detector];
    }
  }
  report.files = std::move(slots);

  if (labels != nullptr) {
    report.scored = true;
    for (const auto& name : default_detector_names()) report.scores[name];
    for (const auto& file : report.files) {
      const auto labelled = labels->find(file.name);
      for (auto& [detector, score] : report.scores) {
        const bool predicted =
            std::any_of(file.findings.begin(), file.findings.end(),
                        [&](const Finding& f) { return f.detector == detector; });
        const bool actual =
            labelled != labels->end() && labelled->second.count(detector) > 0;
        if (predicted && actual) ++score.tp;
        else if (predicted && !actual) ++score.fp;
        else if (!predicted && actual) ++score.fn;
        else ++score.tn;
      }
    }
  }
  return report;
}

std::vector<std::string> list_snoop_files(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() == ".btsnoop") out.push_back(p.string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

FleetReport analyze_tree(const std::string& dir, const FleetConfig& config) {
  const auto labels = load_labels(dir + "/labels.jsonl");
  return analyze_files(list_snoop_files(dir), config, labels ? &*labels : nullptr);
}

std::string FleetReport::to_json() const {
  std::string out;
  out.reserve(1024 + files.size() * 128);
  out += "{\n";
  out += "  \"report\": \"fleet_snoop_analytics\",\n";
  append_fmt(out, "  \"files_scanned\": %zu,\n", files_scanned);
  append_fmt(out, "  \"files_failed\": %zu,\n", files_failed);
  append_fmt(out, "  \"bytes_total\": %llu,\n",
             static_cast<unsigned long long>(bytes_total));
  append_fmt(out, "  \"records_total\": %llu,\n",
             static_cast<unsigned long long>(records_total));
  append_fmt(out, "  \"findings_total\": %zu,\n", findings_total);
  out += "  \"findings_per_detector\": {";
  bool first = true;
  for (const auto& [name, count] : findings_per_detector) {
    if (!std::exchange(first, false)) out += ", ";
    append_fmt(out, "\"%s\": %zu", name.c_str(), count);
  }
  out += "},\n";
  if (scored) {
    out += "  \"scores\": {\n";
    first = true;
    for (const auto& [name, score] : scores) {
      if (!std::exchange(first, false)) out += ",\n";
      append_fmt(out, "    \"%s\": {\"tp\": %zu, \"fp\": %zu, \"fn\": %zu, \"tn\": %zu",
                 name.c_str(), score.tp, score.fp, score.fn, score.tn);
      out += ", \"precision\": ";
      append_double(out, score.precision());
      out += ", \"recall\": ";
      append_double(out, score.recall());
      out += "}";
    }
    out += "\n  },\n";
  }
  out += "  \"files\": [\n";
  for (std::size_t i = 0; i < files.size(); ++i) {
    const FileReport& file = files[i];
    out += "    {";
    append_fmt(out, "\"name\": \"%s\", ", obs::json_escape(file.name).c_str());
    append_fmt(out, "\"opened\": %s, ", file.opened ? "true" : "false");
    append_fmt(out, "\"bytes\": %zu, \"records\": %zu", file.bytes, file.records);
    if (!file.fault.ok())
      append_fmt(out, ", \"fault\": \"%s\"", obs::json_escape(file.fault.describe()).c_str());
    if (file.findings.empty()) {
      out += ", \"findings\": []";
    } else {
      out += ", \"findings\": [\n";
      for (std::size_t j = 0; j < file.findings.size(); ++j) {
        const Finding& f = file.findings[j];
        append_fmt(out, "      {\"detector\": \"%s\", \"frame\": %zu, \"ts_us\": %llu, ",
                   f.detector.c_str(), f.frame,
                   static_cast<unsigned long long>(f.ts_us));
        append_fmt(out, "\"peer\": \"%s\", \"detail\": \"%s\"}",
                   f.peer.to_string().c_str(), obs::json_escape(f.detail).c_str());
        out += (j + 1 < file.findings.size()) ? ",\n" : "\n    ";
      }
      out += "]";
    }
    out += (i + 1 < files.size()) ? "},\n" : "}\n";
  }
  out += "  ],\n";
  out += "  \"metrics\": ";
  out += metrics.to_json("  ");
  out += "\n}\n";
  return out;
}

}  // namespace blap::analytics
