// fleet.hpp — fleet-scale snoop capture analytics.
//
// The defender's side of BLAP: given thousands of btsnoop captures pulled
// off a device fleet, scan every record through the detector rule set
// (detector.hpp) and produce one deterministic FleetReport — per-detector
// finding counts, a per-capture finding timeline, merged obs metrics and,
// when a label manifest accompanies the corpus, a precision/recall table
// per detector.
//
// Parallelism follows the campaign engine's contract (campaign.hpp): the
// file list is sorted, workers pull indices off one atomic counter and
// write into pre-sized result slots, and aggregation runs sequentially in
// index order. The report is therefore a pure function of the input files
// — byte-identical JSON for any BLAP_JOBS value.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analytics/detector.hpp"
#include "obs/obs.hpp"

namespace blap::analytics {

/// Corpus ground truth: capture file name (base name, no directory) to the
/// set of attack labels present in it. Shares the detector id vocabulary.
using LabelMap = std::map<std::string, std::set<std::string>>;

/// Load a labels.jsonl manifest: one {"file": "...", "labels": [...]}
/// object per line. nullopt when the file cannot be read or a line does not
/// parse; the loader is strict because a silently half-read manifest would
/// corrupt the precision/recall table.
[[nodiscard]] std::optional<LabelMap> load_labels(const std::string& path);

struct FleetConfig {
  /// Worker threads: 0 = campaign::resolve_jobs() (BLAP_JOBS env, else
  /// hardware concurrency).
  unsigned jobs = 0;
  DetectorConfig detectors;
};

/// One capture's scan result.
struct FileReport {
  std::string path;  // as given to the engine (not emitted in JSON)
  std::string name;  // base name; the JSON identity and label-manifest key
  bool opened = false;
  std::size_t bytes = 0;
  std::size_t records = 0;
  hci::SnoopFault fault;                 // first malformed shape, if any
  std::vector<Finding> findings;         // sorted by (frame, detector)
  obs::MetricsSnapshot metrics;          // per-file record/finding counters
};

/// Confusion-matrix cell counts for one detector against the labels.
struct DetectorScore {
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;
  /// 1.0 when the denominator is zero (nothing predicted / nothing labelled).
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
};

struct FleetReport {
  std::size_t files_scanned = 0;  // files successfully opened and walked
  std::size_t files_failed = 0;   // unreadable file or bad snoop header
  std::uint64_t bytes_total = 0;
  std::uint64_t records_total = 0;
  std::size_t findings_total = 0;
  /// Zero-filled over default_detector_names(), so every report carries the
  /// full vocabulary even when a detector never fired.
  std::map<std::string, std::size_t> findings_per_detector;
  std::vector<FileReport> files;  // sorted by name (the scan order)
  obs::MetricsSnapshot metrics;   // order-independent merge of per-file data
  bool scored = false;
  std::map<std::string, DetectorScore> scores;  // per detector, when labelled

  /// Deterministic JSON: pure function of the input captures (and labels).
  [[nodiscard]] std::string to_json() const;
};

/// Scan one capture with a caller-owned detector set (reused across files —
/// finish() returns each detector to its reset state).
[[nodiscard]] FileReport analyze_file(const std::string& path,
                                      std::vector<std::unique_ptr<Detector>>& detectors);

/// Scan `paths` across a worker pool and aggregate. Paths are sorted (by
/// base name, then full path) before the scan, so the report order does not
/// depend on how the caller enumerated them.
[[nodiscard]] FleetReport analyze_files(std::vector<std::string> paths,
                                        const FleetConfig& config = {},
                                        const LabelMap* labels = nullptr);

/// All *.btsnoop files directly under `dir`, sorted.
[[nodiscard]] std::vector<std::string> list_snoop_files(const std::string& dir);

/// Convenience: list_snoop_files(dir), auto-load `dir`/labels.jsonl when
/// present, scan and score.
[[nodiscard]] FleetReport analyze_tree(const std::string& dir,
                                       const FleetConfig& config = {});

}  // namespace blap::analytics
