// detector.hpp — the pluggable BLAP-signature rule engine.
//
// A Detector is a small streaming state machine fed one snoop record at a
// time (zero-copy SnoopRecordView straight off the mmap) and asked for its
// findings when the file ends. Detectors are owned per worker thread and
// reset between files, so a fleet run allocates a handful of detector sets
// no matter how many thousand captures it scans.
//
// The four built-ins cover the paper's attack surface from the defender's
// side (ROADMAP item 4, modelled on floss hcidoc's rule set):
//
//   plaintext_link_key  — §IV-A: a link key crossed the HCI in plaintext
//                         (Link_Key_Notification / Link_Key_Request_Reply
//                         with the 16 key bytes present, Return_Link_Keys,
//                         or a Read_Stored_Link_Key sweep). Dumps filtered
//                         by the §VII-A mitigation do NOT fire: the filter
//                         strips the key bytes and the detector checks for
//                         the bytes, not the opcode.
//   page_blocking       — §V: the victim is pairing-initiator on an ACL it
//                         did not initiate (Connection_Request + Accept
//                         then Authentication_Requested) with a
//                         NoInputNoOutput peer or a PLOC-shaped idle gap;
//                         or repeated failed pages / accept timeouts
//                         against one address.
//   ssp_downgrade       — SSP-MITM line of work: a peer whose advertised IO
//                         capability collapses to NoInputNoOutput between
//                         pairings in one log, or an SSP-capable peer that
//                         falls back to legacy PIN pairing.
//   pairing_retry_storm — fault-layer signature: repeated pairing attempts
//                         with repeated failures against one peer.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bdaddr.hpp"
#include "hci/snoop.hpp"

namespace blap::analytics {

/// Stable detector identifiers — these are the JSON/label vocabulary shared
/// by findings, corpus label manifests and the precision/recall table.
inline constexpr std::string_view kPlaintextLinkKey = "plaintext_link_key";
inline constexpr std::string_view kPageBlocking = "page_blocking";
inline constexpr std::string_view kSspDowngrade = "ssp_downgrade";
inline constexpr std::string_view kPairingRetryStorm = "pairing_retry_storm";

/// One detection. `frame` is the 1-based frame number of the triggering
/// record — the same numbering snoop_inspector's table and --jsonl use.
struct Finding {
  std::string detector;
  std::size_t frame = 0;
  SimTime ts_us = 0;
  BdAddr peer;  // implicated peer; all-zeros when not attributable
  std::string detail;
};

/// A snoop record plus the lazily shared header decode every rule needs.
/// `params` views the command/event parameter bytes actually present in the
/// capture (a §VII-A-filtered record has them truncated; check sizes).
struct RecordCtx {
  const hci::SnoopRecordView& view;
  std::optional<hci::PacketType> type;       // nullopt: unknown H4 type byte
  std::optional<std::uint16_t> opcode;       // commands only
  std::optional<std::uint8_t> event;         // events only
  BytesView params;

  /// Decode the shared header fields from a raw record view.
  [[nodiscard]] static RecordCtx from_view(const hci::SnoopRecordView& view);
};

struct DetectorConfig {
  /// page_blocking: minimum failed pages / accept timeouts against one
  /// address before the repeated-failure rule fires.
  std::size_t page_failure_threshold = 3;
  /// page_blocking: idle gap between an inbound Connection_Complete and the
  /// victim's own Authentication_Requested that marks a PLOC (the paper's
  /// PoC holds the stall for seconds; legit inbound pairings auth at once).
  SimTime ploc_idle_threshold = kSecond;
  /// pairing_retry_storm: attempts and failures against one peer.
  std::size_t storm_attempt_threshold = 3;
  std::size_t storm_failure_threshold = 2;
};

class Detector {
 public:
  virtual ~Detector() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Feed one record. Called in file order.
  virtual void on_record(const RecordCtx& ctx) = 0;
  /// Flush end-of-file state into `out` and return to the reset state.
  virtual void finish(std::vector<Finding>& out) = 0;
};

/// The built-in rule set, in a fixed deterministic order.
[[nodiscard]] std::vector<std::unique_ptr<Detector>> make_default_detectors(
    const DetectorConfig& config = {});

/// The detector id vocabulary in report order (the order make_default_
/// detectors uses), for zero-filled per-detector tables.
[[nodiscard]] const std::vector<std::string>& default_detector_names();

}  // namespace blap::analytics
