// detectors.cpp — the four built-in BLAP attack detectors.
//
// Every detector is a streaming state machine over RecordCtx. State lives in
// std::map/std::set keyed by BdAddr or connection handle (ordered containers
// by policy: finish() iterates them, and iteration order reaches the
// FleetReport JSON). Findings fire either at the record that crosses a
// threshold (frame attribution is exact) or at finish() for rules that need
// end-of-file context (the PLOC fingerprint waits for the IO capability
// exchange that follows the suspicious Authentication_Requested).
#include "analytics/detector.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/log.hpp"
#include "hci/constants.hpp"

namespace blap::analytics {

namespace {

using hci::ev::kAuthenticationComplete;
using hci::ev::kConnectionComplete;
using hci::ev::kConnectionRequest;
using hci::ev::kIoCapabilityResponse;
using hci::ev::kLinkKeyNotification;
using hci::ev::kPinCodeRequest;
using hci::ev::kReturnLinkKeys;
using hci::ev::kSimplePairingComplete;

/// Decode a wire-order BD_ADDR at `offset` of the parameter bytes.
std::optional<BdAddr> addr_at(BytesView params, std::size_t offset) {
  if (params.size() < offset + BdAddr::kSize) return std::nullopt;
  ByteReader r(params.subspan(offset));
  return BdAddr::from_wire(r);
}

Finding make_finding(std::string_view detector, const RecordCtx& ctx, const BdAddr& peer,
                     std::string detail) {
  Finding f;
  f.detector = std::string(detector);
  f.frame = ctx.view.index + 1;  // 1-based, matching snoop_inspector's table
  f.ts_us = ctx.view.timestamp_us;
  f.peer = peer;
  f.detail = std::move(detail);
  return f;
}

// ---------------------------------------------------------------------------
// plaintext_link_key — §IV-A exposure. Fires only when the 16 key bytes are
// actually present in the capture, so a §VII-A header-only dump stays clean
// even though the key-bearing opcodes appear in it.
// ---------------------------------------------------------------------------
class PlaintextLinkKeyDetector final : public Detector {
 public:
  [[nodiscard]] std::string_view name() const override { return kPlaintextLinkKey; }

  void on_record(const RecordCtx& ctx) override {
    // Link_Key_Notification: BD_ADDR(6) + Link_Key(16) + Key_Type(1).
    if (ctx.event == kLinkKeyNotification && ctx.params.size() >= 6 + 16) {
      if (auto addr = addr_at(ctx.params, 0)) {
        pending_.push_back(make_finding(
            kPlaintextLinkKey, ctx, *addr,
            strfmt("link key for %s in plaintext HCI_Link_Key_Notification (key %s)",
                   addr->to_string().c_str(),
                   hex(ctx.params.subspan(6, 16)).c_str())));
      }
      return;
    }
    // Link_Key_Request_Reply: BD_ADDR(6) + Link_Key(16) — the paper's
    // "0b 04 16" search target.
    if (ctx.opcode == hci::op::kLinkKeyRequestReply && ctx.params.size() >= 6 + 16) {
      if (auto addr = addr_at(ctx.params, 0)) {
        pending_.push_back(make_finding(
            kPlaintextLinkKey, ctx, *addr,
            strfmt("stored link key for %s replayed in HCI_Link_Key_Request_Reply (key %s)",
                   addr->to_string().c_str(),
                   hex(ctx.params.subspan(6, 16)).c_str())));
      }
      return;
    }
    // Return_Link_Keys: Num_Keys(1) + Num_Keys x (BD_ADDR(6) + Key(16)) —
    // the bulk dump a Read_Stored_Link_Key sweep triggers.
    if (ctx.event == kReturnLinkKeys && ctx.params.size() >= 1 + 6 + 16 &&
        ctx.params[0] > 0) {
      if (auto addr = addr_at(ctx.params, 1)) {
        const std::size_t present =
            std::min<std::size_t>(ctx.params[0], (ctx.params.size() - 1) / (6 + 16));
        pending_.push_back(make_finding(
            kPlaintextLinkKey, ctx, *addr,
            strfmt("Read_Stored_Link_Key sweep dumped %zu bond key(s) in "
                   "HCI_Return_Link_Keys (first: %s)",
                   present, addr->to_string().c_str())));
      }
      return;
    }
  }

  void finish(std::vector<Finding>& out) override {
    for (auto& f : pending_) out.push_back(std::move(f));
    pending_.clear();
  }

 private:
  std::vector<Finding> pending_;
};

// ---------------------------------------------------------------------------
// page_blocking — §V. Two rules:
//  (a) the Fig. 12b victim fingerprint: the local host pairs as initiator
//      (Authentication_Requested) over an ACL it did not initiate
//      (Connection_Request + inbound Connection_Complete), and the peer
//      advertises NoInputNoOutput — or the host sat in a PLOC-shaped stall
//      between the inbound connect and its own authentication.
//  (b) repeated blocked pages: >= threshold Connection_Complete failures
//      with Page_Timeout / Connection_Accept_Timeout against one address,
//      AND a later inbound connection from that same address. The inbound
//      half is what separates PLOC (the attacker holds the accessory's page
//      scan, then pages the victim as the accessory) from an RF loss storm,
//      which produces the same run of failed pages but never the inbound
//      connect — so retry storms cannot trip this rule.
// ---------------------------------------------------------------------------
class PageBlockingDetector final : public Detector {
 public:
  explicit PageBlockingDetector(const DetectorConfig& config) : config_(config) {}

  [[nodiscard]] std::string_view name() const override { return kPageBlocking; }

  void on_record(const RecordCtx& ctx) override {
    if (ctx.event == kConnectionRequest) {
      if (auto addr = addr_at(ctx.params, 0)) inbound_requested_.insert(*addr);
      return;
    }
    if (ctx.event == kConnectionComplete && ctx.params.size() >= 1 + 2 + 6) {
      const auto status = static_cast<hci::Status>(ctx.params[0]);
      const auto addr = addr_at(ctx.params, 3);
      if (!addr) return;
      if (status == hci::Status::kSuccess) {
        const auto handle =
            static_cast<hci::ConnectionHandle>(ctx.params[1] | (ctx.params[2] << 8));
        if (inbound_requested_.count(*addr) > 0) {
          inbound_complete_[handle] = {*addr, ctx.view.timestamp_us};
          inbound_connected_.insert(*addr);
        }
        return;
      }
      if (status == hci::Status::kPageTimeout ||
          status == hci::Status::kConnectionAcceptTimeout) {
        auto& blocked = blocked_pages_[*addr];
        ++blocked.count;
        // Remember the crossing record: that is the frame the finding
        // attributes to if the inbound half of the fingerprint arrives.
        if (blocked.count == config_.page_failure_threshold) {
          blocked.frame = ctx.view.index + 1;
          blocked.ts_us = ctx.view.timestamp_us;
          blocked.last_status = status;
        }
      }
      return;
    }
    if (ctx.opcode == hci::op::kAuthenticationRequested && ctx.params.size() >= 2) {
      const auto handle =
          static_cast<hci::ConnectionHandle>(ctx.params[0] | (ctx.params[1] << 8));
      auto it = inbound_complete_.find(handle);
      if (it == inbound_complete_.end()) return;  // we initiated; not PLOC-shaped
      Candidate c;
      c.frame = ctx.view.index + 1;
      c.ts_us = ctx.view.timestamp_us;
      c.peer = it->second.first;
      c.idle_gap = ctx.view.timestamp_us - it->second.second;
      candidates_.push_back(c);
      return;
    }
    if (ctx.event == kIoCapabilityResponse && ctx.params.size() >= 7) {
      if (auto addr = addr_at(ctx.params, 0))
        peer_io_[*addr] = static_cast<hci::IoCapability>(ctx.params[6]);
      return;
    }
  }

  void finish(std::vector<Finding>& out) override {
    std::set<BdAddr> fired;
    for (const auto& c : candidates_) {
      if (fired.count(c.peer) > 0) continue;
      auto io = peer_io_.find(c.peer);
      // blap-lint: spec-ok classifying a captured IO capability byte, not deciding a pairing
      const bool nii_peer =
          io != peer_io_.end() && io->second == hci::IoCapability::kNoInputNoOutput;
      const bool ploc_stall = c.idle_gap >= config_.ploc_idle_threshold;
      if (!nii_peer && !ploc_stall) continue;
      fired.insert(c.peer);
      Finding f;
      f.detector = std::string(kPageBlocking);
      f.frame = c.frame;
      f.ts_us = c.ts_us;
      f.peer = c.peer;
      f.detail = strfmt(
          "victim-initiated pairing on inbound ACL from %s (%s)",
          c.peer.to_string().c_str(),
          nii_peer ? "NoInputNoOutput peer" : "PLOC-shaped pre-auth stall");
      out.push_back(std::move(f));
    }
    for (const auto& [addr, blocked] : blocked_pages_) {
      if (blocked.count < config_.page_failure_threshold) continue;
      if (inbound_connected_.count(addr) == 0) continue;  // loss storm, not PLOC
      if (fired.count(addr) > 0) continue;  // fingerprint rule already flagged it
      Finding f;
      f.detector = std::string(kPageBlocking);
      f.frame = blocked.frame;
      f.ts_us = blocked.ts_us;
      f.peer = addr;
      f.detail = strfmt(
          "%zu blocked pages toward %s followed by an inbound connect from it (last: %s)",
          blocked.count, addr.to_string().c_str(), to_string(blocked.last_status));
      out.push_back(std::move(f));
    }
    candidates_.clear();
    inbound_requested_.clear();
    inbound_connected_.clear();
    inbound_complete_.clear();
    peer_io_.clear();
    blocked_pages_.clear();
  }

 private:
  struct Candidate {
    std::size_t frame = 0;
    SimTime ts_us = 0;
    BdAddr peer;
    SimTime idle_gap = 0;
  };

  struct BlockedPages {
    std::size_t count = 0;
    std::size_t frame = 0;  // record that crossed the threshold
    SimTime ts_us = 0;
    hci::Status last_status = hci::Status::kSuccess;
  };

  DetectorConfig config_;
  std::set<BdAddr> inbound_requested_;
  std::set<BdAddr> inbound_connected_;
  std::map<hci::ConnectionHandle, std::pair<BdAddr, SimTime>> inbound_complete_;
  std::map<BdAddr, hci::IoCapability> peer_io_;
  std::map<BdAddr, BlockedPages> blocked_pages_;
  std::vector<Candidate> candidates_;
};

// ---------------------------------------------------------------------------
// ssp_downgrade — a peer whose IO capability collapses to NoInputNoOutput
// after it previously advertised a MITM-capable one (the impersonation move
// behind the paper's car-kit attack), or an SSP-capable peer that falls back
// to legacy PIN pairing. One finding per address per rule.
// ---------------------------------------------------------------------------
class SspDowngradeDetector final : public Detector {
 public:
  [[nodiscard]] std::string_view name() const override { return kSspDowngrade; }

  void on_record(const RecordCtx& ctx) override {
    if (ctx.event == kIoCapabilityResponse && ctx.params.size() >= 7) {
      auto addr = addr_at(ctx.params, 0);
      if (!addr) return;
      const auto io = static_cast<hci::IoCapability>(ctx.params[6]);
      auto [it, fresh] = first_io_.emplace(*addr, io);
      // blap-lint: spec-ok comparing captured IO capability bytes across pairings, not deciding one
      if (!fresh && io == hci::IoCapability::kNoInputNoOutput &&
          // blap-lint: spec-ok same classification, second operand
          it->second != hci::IoCapability::kNoInputNoOutput &&
          downgrade_fired_.insert(*addr).second) {
        pending_.push_back(make_finding(
            kSspDowngrade, ctx, *addr,
            strfmt("%s re-paired as NoInputNoOutput after earlier %s exchange",
                   addr->to_string().c_str(), to_string(it->second))));
      }
      return;
    }
    if (ctx.event == kPinCodeRequest) {
      auto addr = addr_at(ctx.params, 0);
      if (!addr) return;
      if (first_io_.count(*addr) > 0 && legacy_fired_.insert(*addr).second) {
        pending_.push_back(make_finding(
            kSspDowngrade, ctx, *addr,
            strfmt("SSP-capable peer %s fell back to legacy PIN pairing",
                   addr->to_string().c_str())));
      }
      return;
    }
  }

  void finish(std::vector<Finding>& out) override {
    for (auto& f : pending_) out.push_back(std::move(f));
    pending_.clear();
    first_io_.clear();
    downgrade_fired_.clear();
    legacy_fired_.clear();
  }

 private:
  std::map<BdAddr, hci::IoCapability> first_io_;
  std::set<BdAddr> downgrade_fired_;
  std::set<BdAddr> legacy_fired_;
  std::vector<Finding> pending_;
};

// ---------------------------------------------------------------------------
// pairing_retry_storm — the fault-recovery signature: the host keeps
// re-running a pair operation against one peer (repeated pages and
// authentications) while failures pile up. Attempts count pairing rounds
// (Authentication_Requested) plus pages that died before reaching one;
// failures count failed connects, failed authentications and failed SSP
// completions. Fires once per address when both thresholds are met.
// ---------------------------------------------------------------------------
class PairingRetryStormDetector final : public Detector {
 public:
  explicit PairingRetryStormDetector(const DetectorConfig& config) : config_(config) {}

  [[nodiscard]] std::string_view name() const override { return kPairingRetryStorm; }

  void on_record(const RecordCtx& ctx) override {
    if (ctx.event == kConnectionComplete && ctx.params.size() >= 1 + 2 + 6) {
      const auto status = static_cast<hci::Status>(ctx.params[0]);
      const auto addr = addr_at(ctx.params, 3);
      if (!addr) return;
      if (status == hci::Status::kSuccess) {
        const auto handle =
            static_cast<hci::ConnectionHandle>(ctx.params[1] | (ctx.params[2] << 8));
        handle_to_addr_[handle] = *addr;
      } else {
        auto& s = stats_[*addr];
        ++s.attempts;  // a page that never reached authentication
        ++s.failures;
        maybe_fire(ctx, *addr, s);
      }
      return;
    }
    if (ctx.opcode == hci::op::kAuthenticationRequested && ctx.params.size() >= 2) {
      const auto handle =
          static_cast<hci::ConnectionHandle>(ctx.params[0] | (ctx.params[1] << 8));
      auto it = handle_to_addr_.find(handle);
      if (it == handle_to_addr_.end()) return;
      auto& s = stats_[it->second];
      ++s.attempts;
      maybe_fire(ctx, it->second, s);
      return;
    }
    if (ctx.event == kAuthenticationComplete && ctx.params.size() >= 3 &&
        ctx.params[0] != 0) {
      const auto handle =
          static_cast<hci::ConnectionHandle>(ctx.params[1] | (ctx.params[2] << 8));
      auto it = handle_to_addr_.find(handle);
      if (it == handle_to_addr_.end()) return;
      auto& s = stats_[it->second];
      ++s.failures;
      s.last_status = static_cast<hci::Status>(ctx.params[0]);
      maybe_fire(ctx, it->second, s);
      return;
    }
    if (ctx.event == kSimplePairingComplete && ctx.params.size() >= 1 + 6 &&
        ctx.params[0] != 0) {
      if (auto addr = addr_at(ctx.params, 1)) {
        auto& s = stats_[*addr];
        ++s.failures;
        s.last_status = static_cast<hci::Status>(ctx.params[0]);
        maybe_fire(ctx, *addr, s);
      }
      return;
    }
  }

  void finish(std::vector<Finding>& out) override {
    for (auto& f : pending_) out.push_back(std::move(f));
    pending_.clear();
    handle_to_addr_.clear();
    stats_.clear();
    fired_.clear();
  }

 private:
  struct PeerStats {
    std::size_t attempts = 0;
    std::size_t failures = 0;
    hci::Status last_status = hci::Status::kSuccess;
  };

  void maybe_fire(const RecordCtx& ctx, const BdAddr& addr, const PeerStats& s) {
    if (s.attempts < config_.storm_attempt_threshold ||
        s.failures < config_.storm_failure_threshold)
      return;
    if (!fired_.insert(addr).second) return;
    pending_.push_back(make_finding(
        kPairingRetryStorm, ctx, addr,
        strfmt("%zu pairing attempts with %zu failures toward %s (last: %s)",
               s.attempts, s.failures, addr.to_string().c_str(),
               to_string(s.last_status))));
  }

  DetectorConfig config_;
  std::map<hci::ConnectionHandle, BdAddr> handle_to_addr_;
  std::map<BdAddr, PeerStats> stats_;
  std::set<BdAddr> fired_;
  std::vector<Finding> pending_;
};

}  // namespace

RecordCtx RecordCtx::from_view(const hci::SnoopRecordView& view) {
  RecordCtx ctx{view, std::nullopt, std::nullopt, std::nullopt, {}};
  const BytesView wire = view.wire;
  if (wire.empty()) return ctx;
  switch (wire[0]) {
    case 0x01:
      ctx.type = hci::PacketType::kCommand;
      if (wire.size() >= 3)
        ctx.opcode = static_cast<std::uint16_t>(wire[1] | (wire[2] << 8));
      // Params follow the 1-byte length at wire[3]; a §VII-A-filtered record
      // ends there, leaving ctx.params empty.
      if (wire.size() > 4) ctx.params = wire.subspan(4);
      break;
    case 0x04:
      ctx.type = hci::PacketType::kEvent;
      if (wire.size() >= 2) ctx.event = wire[1];
      if (wire.size() > 3) ctx.params = wire.subspan(3);
      break;
    case 0x02:
      ctx.type = hci::PacketType::kAclData;
      if (wire.size() > 5) ctx.params = wire.subspan(5);
      break;
    case 0x03:
      ctx.type = hci::PacketType::kScoData;
      if (wire.size() > 4) ctx.params = wire.subspan(4);
      break;
    default:
      break;  // vendor packet type: leave everything unset
  }
  return ctx;
}

std::vector<std::unique_ptr<Detector>> make_default_detectors(const DetectorConfig& config) {
  std::vector<std::unique_ptr<Detector>> out;
  out.push_back(std::make_unique<PlaintextLinkKeyDetector>());
  out.push_back(std::make_unique<PageBlockingDetector>(config));
  out.push_back(std::make_unique<SspDowngradeDetector>());
  out.push_back(std::make_unique<PairingRetryStormDetector>(config));
  return out;
}

const std::vector<std::string>& default_detector_names() {
  static const std::vector<std::string> names = {
      std::string(kPlaintextLinkKey), std::string(kPageBlocking),
      std::string(kSspDowngrade), std::string(kPairingRetryStorm)};
  return names;
}

}  // namespace blap::analytics
