// corpus.hpp — labelled snoop-capture corpus generation.
//
// The fleet analytics engine needs ground truth to report precision/recall,
// and the simulator is the one place ground truth exists by construction:
// every capture comes out of a scenario whose outcome (pair status, PLOC
// establishment, retry counters) is known from the simulation side, never
// from scanning the log the detectors will scan. generate_corpus() runs one
// campaign per scenario class across the campaign worker pool and writes
//
//   <dir>/<class>_<index>.btsnoop   — the victim device's HCI dump
//   <dir>/labels.jsonl              — {"file": ..., "labels": [...]} per file
//
// Classes (files are multi-labelled when a scenario triggers several
// signatures — e.g. an unfiltered page-blocking victim also logs the
// plaintext key its pairing produced):
//
//   benign_filtered — normal pairing, §VII-A header-only snoop filter on
//   benign_lossy    — normal pairing over a mildly lossy channel (5%)
//   plaintext_key   — normal pairing, unfiltered dump (§IV-A exposure)
//   key_sweep       — synthetic attacker-tool log: Read_Stored_Link_Key +
//                     Return_Link_Keys bond dump
//   page_blocking   — full §V attack; the victim's dump shows Fig. 12b
//   ssp_downgrade   — re-pair after bond removal with the peer collapsed to
//                     NoInputNoOutput (car-kit impersonation shape)
//   retry_storm     — pairing into a 90 s jam window with fault recovery
//                     retrying on backoff (the failed-page storm shape)
//
// Output is deterministic: same (dir contents, labels) for a given root
// seed and files_per_class, for any jobs value.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace blap::analytics {

struct CorpusOptions {
  std::string dir;
  std::size_t files_per_class = 8;
  std::uint64_t root_seed = 1;
  /// 0 = campaign::resolve_jobs().
  unsigned jobs = 0;
};

struct CorpusSummary {
  std::size_t files_written = 0;
  std::size_t trials_failed = 0;  // scenario outcomes that voided the file
  std::map<std::string, std::size_t> files_per_class;
  std::map<std::string, std::size_t> files_per_label;
};

/// The class names in generation order.
[[nodiscard]] const std::vector<std::string>& corpus_class_names();

/// Generate the corpus. nullopt when `dir` cannot be created or a file
/// write fails.
[[nodiscard]] std::optional<CorpusSummary> generate_corpus(const CorpusOptions& options);

}  // namespace blap::analytics
