#include "invariants/monitor.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace blap::invariants {

InvariantMonitor::InvariantMonitor(core::Simulation& sim, Config config)
    : sim_(sim), config_(std::move(config)) {}

InvariantMonitor::~InvariantMonitor() { uninstall(); }

void InvariantMonitor::install() {
  if (installed_) return;
  prev_ = sim_.scheduler().hook();
  sim_.scheduler().set_hook(this);
  installed_ = true;
}

void InvariantMonitor::uninstall() {
  if (!installed_) return;
  // Only unhook if we are still the installed hook; someone chaining after
  // us owns the slot now and keeps forwarding to prev_ through us — leave
  // the chain alone rather than cutting it.
  if (sim_.scheduler().hook() == this) sim_.scheduler().set_hook(prev_);
  installed_ = false;
}

void InvariantMonitor::attach_sniffer() {
  sim_.medium().add_sniffer([this](const radio::SniffedFrame& frame) {
    on_sniffed(frame.timestamp_us, frame.sender, frame.frame);
  });
}

void InvariantMonitor::reset() {
  has_last_now_ = false;
  pending_.clear();
}

void InvariantMonitor::on_dispatch(SimTime now, std::size_t queue_depth) {
  if (prev_ != nullptr) prev_->on_dispatch(now, queue_depth);
  if (has_last_now_ && now < last_now_)
    record("clock-monotonic", now,
           "dispatch at t=" + std::to_string(now) + " after t=" + std::to_string(last_now_));
  last_now_ = now;
  has_last_now_ = true;
  check(now);
}

void InvariantMonitor::check_now() {
  // Force the grace window shut: anything still pending that is older than
  // the window becomes a violation right now, and a fresh check runs so an
  // end-of-trial skew is seen even if no event fired since it appeared.
  check(sim_.now());
}

void InvariantMonitor::record(const char* invariant, SimTime at, std::string detail) {
  BLAP_WARN("invariants", "%s violated at t=%llu us: %s", invariant,
            static_cast<unsigned long long>(at), detail.c_str());
  violations_.push_back(Violation{invariant, std::move(detail), at});
}

bool InvariantMonitor::exempt(const BdAddr& address) const {
  return std::find(config_.exempt.begin(), config_.exempt.end(), address) !=
         config_.exempt.end();
}

void InvariantMonitor::check(SimTime now) {
  ++checks_;
  std::string why;
  if (!sim_.medium().audit_consistency(&why)) record("radio-table-consistent", now, why);
  if (!sim_.medium().audit_registry(&why)) record("endpoint-generation", now, why);

  for (const auto& device : sim_.devices()) {
    for (const auto& audit : device->controller().audit_links()) {
      if (!audit.tx_busy && audit.tx_queue_depth != 0)
        record("arq-bounded", now,
               device->spec().name + ": idle ARQ engine with " +
                   std::to_string(audit.tx_queue_depth) + " queued frame(s)");
      if (audit.tx_queue_depth > config_.arq_queue_bound)
        record("arq-bounded", now,
               device->spec().name + ": ARQ queue depth " +
                   std::to_string(audit.tx_queue_depth) + " exceeds bound " +
                   std::to_string(config_.arq_queue_bound));
    }
  }

  check_agreement(now);
}

void InvariantMonitor::check_agreement(SimTime now) {
  // Snapshot of the three layers' link tables. Mismatches are keyed by a
  // stable description and only become violations after they persist past
  // the grace window — a Disconnection_Complete in flight, a close
  // indication crossing the air, or a watchdog that has not fired yet all
  // present as transient skew.
  const auto radio_links = sim_.medium().audit_links();
  std::map<std::string, std::string> mismatches;  // key -> detail

  for (const auto& device : sim_.devices()) {
    const std::string& name = device->spec().name;
    const auto ctrl = device->controller().audit_links();
    const radio::RadioEndpoint* endpoint = &device->controller();

    for (const auto& acl : device->host().acls()) {
      const bool backed = std::any_of(ctrl.begin(), ctrl.end(), [&](const auto& link) {
        return link.handle == acl.handle && link.connected;
      });
      if (!backed)
        mismatches.emplace(
            name + "/acl/" + std::to_string(acl.handle),
            name + ": host ACL handle " + std::to_string(acl.handle) + " to " +
                acl.peer.to_string() + " has no connected controller link");
    }
    for (const auto& link : ctrl) {
      const bool on_air =
          std::any_of(radio_links.begin(), radio_links.end(), [&](const auto& rl) {
            return rl.id == link.radio_link && (rl.a == endpoint || rl.b == endpoint);
          });
      if (!on_air)
        mismatches.emplace(
            name + "/ctrl/" + std::to_string(link.handle),
            name + ": controller handle " + std::to_string(link.handle) +
                " references radio link " + std::to_string(link.radio_link) +
                " which the medium does not carry");
    }
  }
  // Radio -> controller: every live radio link must be known (under any
  // state) to both endpoint controllers.
  for (const auto& rl : radio_links) {
    for (const auto& device : sim_.devices()) {
      const radio::RadioEndpoint* endpoint = &device->controller();
      if (rl.a != endpoint && rl.b != endpoint) continue;
      const auto ctrl = device->controller().audit_links();
      const bool known = std::any_of(ctrl.begin(), ctrl.end(), [&](const auto& link) {
        return link.radio_link == rl.id;
      });
      if (!known)
        mismatches.emplace(
            device->spec().name + "/radio/" + std::to_string(rl.id),
            device->spec().name + ": radio link " + std::to_string(rl.id) +
                " has no controller link entry");
    }
  }

  // Heal entries that no longer mismatch.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (mismatches.find(it->first) == mismatches.end())
      it = pending_.erase(it);
    else
      ++it;
  }
  for (const auto& [key, detail] : mismatches) {
    const auto [it, fresh] = pending_.emplace(key, now);
    if (fresh) continue;
    if (now - it->second > config_.agreement_grace && !reported_[key]) {
      reported_[key] = true;
      record("link-table-agreement", now,
             detail + " (skew persisted " + std::to_string(now - it->second) + " us)");
    }
  }
}

void InvariantMonitor::on_sniffed(SimTime now, const BdAddr& sender, const Bytes& frame) {
  if (exempt(sender)) return;
  if (frame.size() < std::tuple_size_v<crypto::LinkKey>) return;
  for (const auto& device : sim_.devices()) {
    if (exempt(device->address())) continue;
    for (const auto& bond : device->host().security().bonds()) {
      const auto& key = bond.link_key;
      const auto hit = std::search(frame.begin(), frame.end(), key.begin(), key.end());
      if (hit != frame.end())
        record("key-plaintext-on-air", now,
               device->spec().name + "'s bonded link key for " + bond.address.to_string() +
                   " crossed the air in plaintext (sent by " + sender.to_string() + ")");
    }
  }
}

}  // namespace blap::invariants
