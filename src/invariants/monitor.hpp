// monitor.hpp — the cross-layer invariant monitor.
//
// The chaos sweep (DESIGN §14) injects single faults all over the stack and
// asks one question per trial: did the stack stay *coherent*? Coherent is
// checkable — the layers keep redundant views of the same state, and the
// redundancy is exactly what a monitor can audit after every scheduler
// event:
//
//   clock-monotonic         virtual time never runs backwards between
//                           dispatches (reset() forgives a fork restore).
//   radio-table-consistent  the medium's link table, address-pair index and
//                           per-slot lists agree (RadioMedium::
//                           audit_consistency).
//   endpoint-generation     every attached endpoint resolves through its
//                           own generation-checked handle.
//   link-table-agreement    host ACLs ⊆ controller links ⊆ radio links, per
//                           device, after a grace window for in-flight
//                           notifications (Disconnection_Complete and close
//                           indications travel at frame latency; watchdogs
//                           fire seconds later — a *persistent* skew is the
//                           bug, a transient one is the protocol).
//   arq-bounded             tx_busy implies a queued frame, an idle engine
//                           implies an empty queue, and the queue never
//                           grows past any plausible retransmission burst.
//   key-plaintext-on-air    no bonded link key crosses the radio in
//                           plaintext (sniffer-based; the masked LMP
//                           comb-key exchange does not trip it, a raw key
//                           would). Attack devices are exempt — leaking the
//                           victim's key is their whole point.
//
// The monitor is a SchedulerHook that CHAINS: it remembers the hook already
// installed (the Observer, when observability is on) and forwards every
// dispatch, so metrics keep flowing underneath it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bdaddr.hpp"
#include "common/scheduler.hpp"
#include "core/device.hpp"

namespace blap::invariants {

struct Violation {
  std::string invariant;  // one of the names above
  std::string detail;
  SimTime at = 0;
};

class InvariantMonitor final : public SchedulerHook {
 public:
  struct Config {
    /// How long a cross-layer link-table skew may persist before it is a
    /// violation. Must exceed every in-flight notification path (frame
    /// latency, transport transit, supervision + watchdog timeouts).
    SimTime agreement_grace = 120 * kSecond;
    /// Frames sent by these addresses are exempt from key-plaintext-on-air.
    std::vector<BdAddr> exempt;
    /// Hard ceiling on a controller's ARQ queue depth.
    std::size_t arq_queue_bound = 4096;
  };

  InvariantMonitor(core::Simulation& sim, Config config);
  ~InvariantMonitor() override;

  /// Chain onto the scheduler's hook slot (keeping whatever was there) and
  /// start checking after every dispatched event.
  void install();
  /// Restore the previous hook. Safe to call twice; the destructor calls it.
  void uninstall();

  /// Add the key-on-air sniffer to the medium. Separate from install()
  /// because a fork restore truncates the sniffer list back to the captured
  /// count — re-attach after every restore.
  void attach_sniffer();

  /// Forget the clock watermark and any pending (in-grace) mismatches.
  /// Call after a fork restore: rewinding virtual time is not a violation.
  void reset();

  void on_dispatch(SimTime now, std::size_t queue_depth) override;

  /// Run every invariant once at the current instant (the end-of-trial
  /// check; also forces pending mismatches older than the grace window to
  /// resolve into violations).
  void check_now();

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }

 private:
  void check(SimTime now);
  void check_agreement(SimTime now);
  void on_sniffed(SimTime now, const BdAddr& sender, const Bytes& frame);
  void record(const char* invariant, SimTime at, std::string detail);
  [[nodiscard]] bool exempt(const BdAddr& address) const;

  core::Simulation& sim_;
  Config config_;
  SchedulerHook* prev_ = nullptr;
  bool installed_ = false;
  SimTime last_now_ = 0;
  bool has_last_now_ = false;
  std::uint64_t checks_ = 0;
  std::vector<Violation> violations_;
  /// Cross-layer mismatches inside their grace window: description ->
  /// first-seen instant. Ordered map so reporting order is deterministic.
  std::map<std::string, SimTime> pending_;
  /// Mismatches already reported as violations — report each skew once.
  std::map<std::string, bool> reported_;
};

}  // namespace blap::invariants
