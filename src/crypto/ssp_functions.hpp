// ssp_functions.hpp — Secure Simple Pairing cryptographic functions
// (Bluetooth Core, Vol 2, Part H §7): f1, g, f2, f3 and the Secure
// Connections helpers h3, h4, h5.
//
//   f1(U, V, X, Z)                  commitment values in Authentication Stage 1
//   g(U, V, X, Y)                   six-digit numeric comparison value
//   f2(W, N1, N2, "btlk", A1, A2)   link key derivation from the DHKey
//   f3(W, N1, N2, R, IOcap, A1,A2)  DHKey check values in Stage 2
//   h3(T, "btak", A1, A2, ACO)      AES encryption key (Secure Connections)
//   h4(T, "btdk", A1, A2)           device authentication key
//   h5(S, R1, R2)                   secure authentication SRES/ACO
//
// U and V are ECDH public-key X coordinates serialized big-endian at the
// curve's coordinate width (24 bytes for P-192, 32 for P-256); addresses are
// big-endian 6-byte BD_ADDRs. Outputs marked "/128" are the most significant
// 128 bits of the HMAC-SHA-256 digest.
#pragma once

#include "common/bdaddr.hpp"
#include "crypto/ecdh.hpp"
#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"

namespace blap::crypto {

/// IO capability triplet sent in the IO Capability exchange and bound into
/// the f3 check: (IO capability code, OOB data present flag, AuthReq flags).
struct IoCapTriplet {
  std::uint8_t io_capability = 0;
  std::uint8_t oob_data_present = 0;
  std::uint8_t auth_req = 0;

  [[nodiscard]] std::array<std::uint8_t, 3> bytes() const {
    return {io_capability, oob_data_present, auth_req};
  }
};

/// Serialize an EC coordinate big-endian at the width of the given curve.
[[nodiscard]] Bytes coordinate_bytes(const EcCurve& curve, const U256& coord);

/// f1 — commitment: HMAC-SHA-256_X(U || V || Z) / 128.
[[nodiscard]] LinkKey f1(const EcCurve& curve, const U256& u, const U256& v, const Rand128& x,
                         std::uint8_t z);

/// g — numeric verification value: SHA-256(U || V || X || Y) mod 2^32.
/// Display value = g % 1'000'000 rendered as six digits.
[[nodiscard]] std::uint32_t g(const EcCurve& curve, const U256& u, const U256& v,
                              const Rand128& x, const Rand128& y);

/// Six-digit display form of g (the number both users compare).
[[nodiscard]] std::uint32_t g_display(std::uint32_t g_value);

/// f2 — link key: HMAC-SHA-256_W(N1 || N2 || "btlk" || A1 || A2) / 128.
/// W is the DHKey serialized at curve width; A1 = initiator, A2 = responder.
[[nodiscard]] LinkKey f2(const EcCurve& curve, const U256& dhkey, const Rand128& n1,
                         const Rand128& n2, const BdAddr& a1, const BdAddr& a2);

/// f3 — DHKey check: HMAC-SHA-256_W(N1 || N2 || R || IOcap || A1 || A2) / 128.
[[nodiscard]] LinkKey f3(const EcCurve& curve, const U256& dhkey, const Rand128& n1,
                         const Rand128& n2, const Rand128& r, const IoCapTriplet& iocap,
                         const BdAddr& a1, const BdAddr& a2);

/// h3 — Secure Connections AES encryption key:
/// HMAC-SHA-256_T("btak" || A1 || A2 || ACO) / 128.
[[nodiscard]] EncryptionKey h3(const LinkKey& t, const BdAddr& a1, const BdAddr& a2,
                               const std::array<std::uint8_t, 8>& aco);

/// h4 — device authentication key: HMAC-SHA-256_T("btdk" || A1 || A2) / 128.
[[nodiscard]] LinkKey h4(const LinkKey& t, const BdAddr& a1, const BdAddr& a2);

/// h5 — secure authentication responses:
/// HMAC-SHA-256_S(R1 || R2) split into SRES_master, SRES_slave, ACO(64-bit).
struct H5Output {
  Sres sres_master;
  Sres sres_slave;
  std::array<std::uint8_t, 8> aco;
};
[[nodiscard]] H5Output h5(const LinkKey& s, const Rand128& r1, const Rand128& r2);

}  // namespace blap::crypto
