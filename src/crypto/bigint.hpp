// bigint.hpp — fixed-width 256-bit unsigned integers and modular arithmetic.
//
// The ECDH key exchange at the heart of Secure Simple Pairing needs field
// arithmetic over the NIST P-192 / P-256 primes. BLAP implements it from
// scratch on a little-endian 4x64-bit limb representation. Multiplication
// produces a 512-bit intermediate reduced by binary long division — not the
// fastest possible approach, but simple to verify and more than fast enough
// for a protocol simulator (an entire ECDH agreement completes in well under
// a millisecond of host time).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace blap::crypto {

/// 256-bit unsigned integer, little-endian limbs (w[0] = least significant).
class U256 {
 public:
  static constexpr std::size_t kLimbs = 4;

  constexpr U256() = default;
  explicit constexpr U256(std::uint64_t v) : w_{v, 0, 0, 0} {}
  explicit constexpr U256(std::array<std::uint64_t, kLimbs> w) : w_(w) {}

  /// Parse big-endian hex (no 0x prefix, up to 64 digits).
  [[nodiscard]] static std::optional<U256> from_hex(std::string_view hex);

  /// Load from big-endian bytes (at most 32; shorter inputs are
  /// zero-extended on the left).
  [[nodiscard]] static std::optional<U256> from_bytes_be(BytesView bytes);

  /// Serialize as exactly 32 big-endian bytes.
  [[nodiscard]] std::array<std::uint8_t, 32> to_bytes_be() const;

  /// Big-endian hex, fixed 64 digits.
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const;
  [[nodiscard]] bool bit(std::size_t i) const;  // i in [0, 255]
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool is_odd() const { return (w_[0] & 1) != 0; }

  [[nodiscard]] const std::array<std::uint64_t, kLimbs>& limbs() const { return w_; }

  /// a + b, returning the carry-out bit.
  static std::uint64_t add(const U256& a, const U256& b, U256& out);
  /// a - b, returning the borrow-out bit (1 if a < b).
  static std::uint64_t sub(const U256& a, const U256& b, U256& out);

  friend std::strong_ordering operator<=>(const U256& a, const U256& b);
  friend bool operator==(const U256& a, const U256& b) = default;

 private:
  std::array<std::uint64_t, kLimbs> w_{};
};

/// 512-bit product of two U256 values.
class U512 {
 public:
  static constexpr std::size_t kLimbs = 8;

  constexpr U512() = default;

  [[nodiscard]] static U512 mul(const U256& a, const U256& b);
  /// Widen a U256 (high limbs zero).
  [[nodiscard]] static U512 widen(const U256& v);

  [[nodiscard]] bool bit(std::size_t i) const;
  [[nodiscard]] std::size_t bit_length() const;

  [[nodiscard]] const std::array<std::uint64_t, kLimbs>& limbs() const { return w_; }

 private:
  friend U256 mod(const U512& value, const U256& modulus);
  std::array<std::uint64_t, kLimbs> w_{};
};

/// value mod modulus (word-level Knuth Algorithm D). modulus must be nonzero.
[[nodiscard]] U256 mod(const U512& value, const U256& modulus);

/// Reference implementation of mod via binary long division — slow but
/// obviously correct; kept for differential property testing of the
/// Algorithm D path.
[[nodiscard]] U256 mod_binary_reference(const U512& value, const U256& modulus);

/// (a + b) mod m. Inputs must already be < m.
[[nodiscard]] U256 add_mod(const U256& a, const U256& b, const U256& m);
/// (a - b) mod m. Inputs must already be < m.
[[nodiscard]] U256 sub_mod(const U256& a, const U256& b, const U256& m);
/// (a * b) mod m.
[[nodiscard]] U256 mul_mod(const U256& a, const U256& b, const U256& m);
/// a^e mod m (square-and-multiply).
[[nodiscard]] U256 pow_mod(const U256& a, const U256& e, const U256& m);
/// a^-1 mod p for prime p (Fermat's little theorem). a must be nonzero mod p.
[[nodiscard]] U256 inv_mod_prime(const U256& a, const U256& p);

}  // namespace blap::crypto
