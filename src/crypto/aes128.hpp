// aes128.hpp — FIPS-197 AES-128 block cipher (encryption direction).
//
// Used by AES-CMAC (Secure Connections device authentication and the h-family
// of key derivation helpers) and by the AES-CCM-style payload encryption
// mitigation in §VII. Only the forward direction is needed anywhere in BLAP
// (CMAC and CTR-style modes never decrypt with the inverse cipher).
// Validated against the FIPS-197 Appendix C vector.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace blap::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  using Block = std::array<std::uint8_t, kBlockSize>;
  using Key = std::array<std::uint8_t, kKeySize>;

  explicit Aes128(const Key& key);

  /// Encrypt a single 16-byte block.
  [[nodiscard]] Block encrypt(const Block& plaintext) const;

 private:
  static constexpr std::size_t kRounds = 10;
  std::array<std::array<std::uint8_t, kBlockSize>, kRounds + 1> round_keys_{};
};

}  // namespace blap::crypto
