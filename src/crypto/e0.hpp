// e0.hpp — the E0 stream cipher used for BR/EDR link encryption.
//
// After LMP authentication, the encryption key Kc' (from E3) keys E0, which
// generates the keystream XORed over ACL payloads. E0 is four LFSRs of
// lengths 25/31/33/39 with the spec's feedback polynomials, combined by a
// summation combiner with two 2-bit delay registers (T1/T2 linear maps).
//
// Initialization substitution: the spec's bit-exact key loading (Kc', master
// BD_ADDR and 26 clock bits threaded into specific LFSR positions, 200
// warm-up clocks, combiner reload) is replaced by an equivalent documented
// scheme — inputs XOR-spread across the registers followed by the same 200
// warm-up clocks. The keystream properties the simulator relies on
// (determinism per (key, addr, clock), inter-key independence, XOR symmetry)
// are identical; bit-exact interop with real silicon is not a goal.
#pragma once

#include <cstdint>

#include "common/bdaddr.hpp"
#include "crypto/keys.hpp"

namespace blap::crypto {

class E0Cipher {
 public:
  /// Initialize from encryption key, master address, and 26-bit clock.
  E0Cipher(const EncryptionKey& key, const BdAddr& master, std::uint32_t clock26);

  /// Next keystream bit.
  [[nodiscard]] std::uint8_t next_bit();

  /// Next keystream byte (LSB first, matching air-order bit transmission).
  [[nodiscard]] std::uint8_t next_byte();

  /// XOR a payload with keystream in place.
  void crypt(Bytes& data);

 private:
  void clock();

  // LFSR states (bit 0 = oldest stage).
  std::uint64_t lfsr_[4] = {0, 0, 0, 0};
  // Combiner 2-bit memories c_t and c_{t-1}.
  std::uint8_t c_ = 0;
  std::uint8_t c_prev_ = 0;
  std::uint8_t last_output_ = 0;
};

}  // namespace blap::crypto
