#include "crypto/saferplus.hpp"

namespace blap::crypto {

namespace {
/// Positions where the first key layer XORs (true) vs adds (false):
/// bytes 1,4,5,8,9,12,13,16 (1-based) use XOR.
constexpr std::array<bool, 16> kXorPosition = {true, false, false, true, true, false,
                                               false, true, true, false, false, true,
                                               true, false, false, true};

/// The "Armenian shuffle" byte permutation applied after each PHT layer
/// (0-based; [9,12,13,16,3,2,7,6,11,10,15,14,1,8,5,4] in the paper's 1-based
/// notation).
constexpr std::array<std::uint8_t, 16> kShuffle = {8, 11, 12, 15, 2, 1, 6, 5,
                                                   10, 9, 14, 13, 0, 7, 4, 3};

struct Tables {
  std::array<std::uint8_t, 256> exp{};
  std::array<std::uint8_t, 256> log{};
  Tables() {
    // exp[i] = 45^i mod 257, with the value 256 represented as 0.
    std::uint32_t value = 1;
    for (std::size_t i = 0; i < 256; ++i) {
      exp[i] = static_cast<std::uint8_t>(value & 0xFF);  // 256 -> 0
      log[exp[i]] = static_cast<std::uint8_t>(i);
      value = (value * 45) % 257;
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::uint8_t rotl8(std::uint8_t v, int s) {
  return static_cast<std::uint8_t>((v << s) | (v >> (8 - s)));
}

/// Pseudo-Hadamard Transform on pairs + Armenian shuffle, applied four times.
void linear_layer(SaferPlus::Block& b) {
  for (int iter = 0; iter < 4; ++iter) {
    SaferPlus::Block t{};
    for (std::size_t i = 0; i < 8; ++i) {
      const std::uint8_t a = b[2 * i];
      const std::uint8_t c = b[2 * i + 1];
      t[2 * i] = static_cast<std::uint8_t>(2 * a + c);
      t[2 * i + 1] = static_cast<std::uint8_t>(a + c);
    }
    for (std::size_t i = 0; i < 16; ++i) b[i] = t[kShuffle[i]];
  }
}
}  // namespace

const std::array<std::uint8_t, 256>& SaferPlus::exp_table() { return tables().exp; }
const std::array<std::uint8_t, 256>& SaferPlus::log_table() { return tables().log; }

SaferPlus::SaferPlus(const Key& key) {
  const auto& exp = tables().exp;

  // 17-byte key register; byte 16 is the XOR checksum of the key.
  std::array<std::uint8_t, 17> reg{};
  std::uint8_t checksum = 0;
  for (std::size_t i = 0; i < kKeySize; ++i) {
    reg[i] = key[i];
    checksum ^= key[i];
  }
  reg[16] = checksum;

  // Subkey 1 is the raw key.
  for (std::size_t j = 0; j < kBlockSize; ++j) subkeys_[0][j] = key[j];

  // Subkeys 2..17: rotate every register byte left 3 bits, select 16 bytes
  // starting one position further each round, and add the e-table biases
  // B_i[j] = exp[exp[(17*i + j + 1) mod 257]] (i = 1-based subkey index).
  for (std::size_t i = 1; i <= 16; ++i) {
    for (auto& b : reg) b = rotl8(b, 3);
    for (std::size_t j = 0; j < kBlockSize; ++j) {
      const std::uint8_t selected = reg[(i + j) % 17];
      const std::uint8_t bias = exp[exp[(17 * (i + 1) + j + 1) % 257]];
      subkeys_[i][j] = static_cast<std::uint8_t>(selected + bias);
    }
  }
}

SaferPlus::Block SaferPlus::run(const Block& input, bool prime) const {
  const auto& exp = tables().exp;
  const auto& log = tables().log;

  Block state = input;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Ar': the original input is re-combined into the input of round 3,
    // using the same xor/add positional pattern as the key layers.
    if (prime && round == 2) {
      for (std::size_t j = 0; j < kBlockSize; ++j) {
        if (kXorPosition[j]) state[j] ^= input[j];
        else state[j] = static_cast<std::uint8_t>(state[j] + input[j]);
      }
    }

    const Block& k1 = subkeys_[2 * round];
    const Block& k2 = subkeys_[2 * round + 1];
    for (std::size_t j = 0; j < kBlockSize; ++j) {
      if (kXorPosition[j]) {
        state[j] = static_cast<std::uint8_t>(exp[state[j] ^ k1[j]] + k2[j]);
      } else {
        state[j] = static_cast<std::uint8_t>(log[static_cast<std::uint8_t>(state[j] + k1[j])] ^
                                             k2[j]);
      }
    }
    linear_layer(state);
  }

  // Output transform with subkey 17 (xor at xor-positions, add elsewhere).
  const Block& k17 = subkeys_[16];
  for (std::size_t j = 0; j < kBlockSize; ++j) {
    if (kXorPosition[j]) state[j] ^= k17[j];
    else state[j] = static_cast<std::uint8_t>(state[j] + k17[j]);
  }
  return state;
}

SaferPlus::Block SaferPlus::ar(const Block& input) const { return run(input, false); }

SaferPlus::Block SaferPlus::ar_prime(const Block& input) const { return run(input, true); }

}  // namespace blap::crypto
