#include "crypto/e1.hpp"

#include <algorithm>

namespace blap::crypto {

namespace {
/// The xor/add positional pattern shared with SAFER+ key layers: 1-based
/// positions 1,4,5,8,9,12,13,16 combine with XOR, the rest with ADD.
constexpr std::array<bool, 16> kXorPosition = {true, false, false, true, true, false,
                                               false, true, true, false, false, true,
                                               true, false, false, true};

/// Offset constants for deriving K~ from K (Vol 2 Part H §6.3): the first
/// eight bytes alternate add/xor with these primes, the second eight invert
/// the operation order.
constexpr std::array<std::uint8_t, 8> kOffsets = {233, 229, 223, 193, 179, 167, 149, 131};

SaferPlus::Key k_tilde(const LinkKey& key) {
  SaferPlus::Key out{};
  for (std::size_t i = 0; i < 8; ++i) {
    if (i % 2 == 0) out[i] = static_cast<std::uint8_t>(key[i] + kOffsets[i]);
    else out[i] = key[i] ^ kOffsets[i];
  }
  for (std::size_t i = 8; i < 16; ++i) {
    if (i % 2 == 0) out[i] = key[i] ^ kOffsets[i - 8];
    else out[i] = static_cast<std::uint8_t>(key[i] + kOffsets[i - 8]);
  }
  return out;
}

/// E(X, L): cyclic expansion of an L-byte string to 16 bytes.
SaferPlus::Block expand(BytesView data) {
  SaferPlus::Block out{};
  for (std::size_t i = 0; i < 16; ++i) out[i] = data[i % data.size()];
  return out;
}

/// Hash(K, I1, I2, L) = Ar'[K~, E(I2, L) +16 (Ar[K, I1] xor16 I1)]
SaferPlus::Block hash(const LinkKey& key, const SaferPlus::Block& i1, BytesView i2) {
  const SaferPlus ar_cipher(key);
  SaferPlus::Block t = ar_cipher.ar(i1);
  for (std::size_t i = 0; i < 16; ++i) t[i] ^= i1[i];

  const SaferPlus::Block e = expand(i2);
  SaferPlus::Block u{};
  for (std::size_t i = 0; i < 16; ++i) u[i] = static_cast<std::uint8_t>(e[i] + t[i]);

  const SaferPlus ar_prime_cipher(k_tilde(key));
  return ar_prime_cipher.ar_prime(u);
}
}  // namespace

E1Output e1(const LinkKey& key, const Rand128& rand, const BdAddr& address) {
  const auto& addr = address.bytes();
  const SaferPlus::Block out = hash(key, rand, BytesView(addr.data(), addr.size()));
  E1Output result{};
  std::copy_n(out.begin(), 4, result.sres.begin());
  std::copy_n(out.begin() + 4, 12, result.aco.begin());
  return result;
}

LinkKey e21(const Rand128& rand, const BdAddr& address) {
  // Key = RAND with its last byte XORed with 6 (the address length);
  // input = the address cyclically expanded to 16 bytes.
  SaferPlus::Key key = rand;
  key[15] ^= 6;
  const auto& addr = address.bytes();
  const SaferPlus cipher(key);
  return cipher.ar_prime(expand(BytesView(addr.data(), addr.size())));
}

LinkKey combination_key(const LinkKey& contribution_a, const LinkKey& contribution_b) {
  LinkKey out{};
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = contribution_a[i] ^ contribution_b[i];
  return out;
}

LinkKey e22(const Rand128& rand, BytesView pin, const BdAddr& address) {
  // PIN' = PIN padded with BD_ADDR bytes up to 16; L' = min(16, L + 6).
  Bytes pin_prime(pin.begin(), pin.end());
  const auto& addr = address.bytes();
  for (std::size_t i = 0; pin_prime.size() < 16 && i < addr.size(); ++i)
    pin_prime.push_back(addr[i]);
  const std::size_t l_prime = pin_prime.size();

  SaferPlus::Key key{};
  const SaferPlus::Block expanded_pin = expand(pin_prime);
  for (std::size_t i = 0; i < 16; ++i) key[i] = expanded_pin[i];

  SaferPlus::Block input = rand;
  input[15] ^= static_cast<std::uint8_t>(l_prime);

  const SaferPlus cipher(key);
  return cipher.ar_prime(input);
}

EncryptionKey e3(const LinkKey& key, const Rand128& rand, const Aco& cof) {
  return hash(key, rand, BytesView(cof.data(), cof.size()));
}

EncryptionKey shorten_key(const EncryptionKey& key, std::size_t bytes) {
  EncryptionKey out{};
  const std::size_t keep = std::min<std::size_t>(bytes, out.size());
  std::copy_n(key.begin(), keep, out.begin());
  return out;
}

// Silence -Wunused for kXorPosition if the pattern is only used by docs in
// some build configurations.
static_assert(kXorPosition[0] && !kXorPosition[1], "xor/add pattern sanity");

}  // namespace blap::crypto
