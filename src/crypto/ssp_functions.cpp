#include "crypto/ssp_functions.hpp"

namespace blap::crypto {

namespace {
constexpr std::array<std::uint8_t, 4> kKeyIdBtlk = {0x62, 0x74, 0x6c, 0x6b};  // "btlk"
constexpr std::array<std::uint8_t, 4> kKeyIdBtak = {0x62, 0x74, 0x61, 0x6b};  // "btak"
constexpr std::array<std::uint8_t, 4> kKeyIdBtdk = {0x62, 0x74, 0x64, 0x6b};  // "btdk"

LinkKey truncate128(const Sha256::Digest& digest) {
  LinkKey out{};
  std::copy_n(digest.begin(), out.size(), out.begin());
  return out;
}
}  // namespace

Bytes coordinate_bytes(const EcCurve& curve, const U256& coord) {
  const auto full = coord.to_bytes_be();
  const std::size_t width = curve.coordinate_size();
  return Bytes(full.end() - static_cast<std::ptrdiff_t>(width), full.end());
}

LinkKey f1(const EcCurve& curve, const U256& u, const U256& v, const Rand128& x,
           std::uint8_t z) {
  ByteWriter msg;
  msg.raw(coordinate_bytes(curve, u));
  msg.raw(coordinate_bytes(curve, v));
  msg.u8(z);
  return truncate128(hmac_sha256(x, msg.data()));
}

std::uint32_t g(const EcCurve& curve, const U256& u, const U256& v, const Rand128& x,
                const Rand128& y) {
  ByteWriter msg;
  msg.raw(coordinate_bytes(curve, u));
  msg.raw(coordinate_bytes(curve, v));
  msg.raw(x);
  msg.raw(y);
  const auto digest = Sha256::hash(msg.data());
  // mod 2^32: the 32 least significant bits of the big-endian digest.
  return (static_cast<std::uint32_t>(digest[28]) << 24) |
         (static_cast<std::uint32_t>(digest[29]) << 16) |
         (static_cast<std::uint32_t>(digest[30]) << 8) | digest[31];
}

std::uint32_t g_display(std::uint32_t g_value) { return g_value % 1'000'000; }

LinkKey f2(const EcCurve& curve, const U256& dhkey, const Rand128& n1, const Rand128& n2,
           const BdAddr& a1, const BdAddr& a2) {
  ByteWriter msg;
  msg.raw(n1);
  msg.raw(n2);
  msg.raw(kKeyIdBtlk);
  msg.raw(a1.bytes());
  msg.raw(a2.bytes());
  return truncate128(hmac_sha256(coordinate_bytes(curve, dhkey), msg.data()));
}

LinkKey f3(const EcCurve& curve, const U256& dhkey, const Rand128& n1, const Rand128& n2,
           const Rand128& r, const IoCapTriplet& iocap, const BdAddr& a1, const BdAddr& a2) {
  ByteWriter msg;
  msg.raw(n1);
  msg.raw(n2);
  msg.raw(r);
  msg.raw(iocap.bytes());
  msg.raw(a1.bytes());
  msg.raw(a2.bytes());
  return truncate128(hmac_sha256(coordinate_bytes(curve, dhkey), msg.data()));
}

EncryptionKey h3(const LinkKey& t, const BdAddr& a1, const BdAddr& a2,
                 const std::array<std::uint8_t, 8>& aco) {
  ByteWriter msg;
  msg.raw(kKeyIdBtak);
  msg.raw(a1.bytes());
  msg.raw(a2.bytes());
  msg.raw(aco);
  return truncate128(hmac_sha256(t, msg.data()));
}

LinkKey h4(const LinkKey& t, const BdAddr& a1, const BdAddr& a2) {
  ByteWriter msg;
  msg.raw(kKeyIdBtdk);
  msg.raw(a1.bytes());
  msg.raw(a2.bytes());
  return truncate128(hmac_sha256(t, msg.data()));
}

H5Output h5(const LinkKey& s, const Rand128& r1, const Rand128& r2) {
  ByteWriter msg;
  msg.raw(r1);
  msg.raw(r2);
  const auto digest = hmac_sha256(s, msg.data());
  H5Output out{};
  std::copy_n(digest.begin(), 4, out.sres_master.begin());
  std::copy_n(digest.begin() + 4, 4, out.sres_slave.begin());
  std::copy_n(digest.begin() + 8, 8, out.aco.begin());
  return out;
}

}  // namespace blap::crypto
