// ecdh.hpp — elliptic-curve Diffie–Hellman on the NIST P-192 and P-256 curves.
//
// Secure Simple Pairing's public-key exchange runs ECDH on P-192 (classic
// SSP, Bluetooth 2.1–4.0) or P-256 (Secure Connections, 4.1+). The simulated
// controllers perform real ECDH during pairing so the derived DHKey — and
// hence the link key f2 computes from it — is a genuine shared secret. This
// is what makes the link key *extraction* attack meaningful in the simulator:
// the key cannot be recomputed by an observer of the air interface, only
// leaked through the HCI.
//
// Curve arithmetic is short-Weierstrass (y^2 = x^3 + ax + b) with Jacobian
// projective coordinates so a scalar multiplication needs a single field
// inversion. Points are validated on receipt (on-curve + non-infinity), which
// also closes the fixed-coordinate invalid-curve attack referenced in the
// paper's related work [10].
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"

namespace blap::crypto {

/// Affine curve point; infinity is represented by is_infinity().
struct EcPoint {
  U256 x;
  U256 y;
  bool infinity = true;

  [[nodiscard]] bool is_infinity() const { return infinity; }
  [[nodiscard]] static EcPoint at_infinity() { return {}; }
  [[nodiscard]] static EcPoint affine(U256 px, U256 py) { return {px, py, false}; }

  friend bool operator==(const EcPoint&, const EcPoint&) = default;
};

/// Domain parameters for a short-Weierstrass prime curve.
class EcCurve {
 public:
  /// NIST P-256 (secp256r1) — used by Secure Connections pairing.
  [[nodiscard]] static const EcCurve& p256();
  /// NIST P-192 (secp192r1) — used by classic SSP pairing.
  [[nodiscard]] static const EcCurve& p192();

  [[nodiscard]] const U256& p() const { return p_; }
  [[nodiscard]] const U256& a() const { return a_; }
  [[nodiscard]] const U256& b() const { return b_; }
  [[nodiscard]] const U256& order() const { return n_; }
  [[nodiscard]] const EcPoint& generator() const { return g_; }
  [[nodiscard]] const char* name() const { return name_; }
  /// Coordinate size in bytes (24 for P-192, 32 for P-256).
  [[nodiscard]] std::size_t coordinate_size() const { return coord_size_; }

  /// True iff point is affine and satisfies the curve equation.
  [[nodiscard]] bool on_curve(const EcPoint& point) const;

  [[nodiscard]] EcPoint add(const EcPoint& lhs, const EcPoint& rhs) const;
  [[nodiscard]] EcPoint double_point(const EcPoint& point) const;
  /// k * point via double-and-add over Jacobian coordinates.
  [[nodiscard]] EcPoint multiply(const U256& k, const EcPoint& point) const;

 private:
  EcCurve(const char* name, std::size_t coord_size, U256 p, U256 a, U256 b, U256 gx, U256 gy,
          U256 n);

  const char* name_;
  std::size_t coord_size_;
  U256 p_, a_, b_, n_;
  EcPoint g_;
};

/// An ECDH key pair on a given curve.
struct EcKeyPair {
  U256 private_key;
  EcPoint public_key;
};

/// Generate a key pair with private scalar uniform in [1, n-1].
[[nodiscard]] EcKeyPair generate_keypair(const EcCurve& curve, Rng& rng);

/// Compute the shared secret (X coordinate of d * Q). Returns nullopt when
/// the peer point is invalid (off-curve, infinity, or maps to infinity) —
/// the caller must abort pairing in that case.
[[nodiscard]] std::optional<U256> ecdh_shared_secret(const EcCurve& curve, const U256& private_key,
                                                     const EcPoint& peer_public);

}  // namespace blap::crypto
