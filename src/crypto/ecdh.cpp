#include "crypto/ecdh.hpp"

#include <cassert>

namespace blap::crypto {

namespace {
U256 hx(std::string_view s) {
  auto v = U256::from_hex(s);
  assert(v.has_value());
  return *v;
}

/// Jacobian projective point: (X, Y, Z) represents affine (X/Z^2, Y/Z^3).
struct Jacobian {
  U256 x, y, z;
  bool infinity = true;
};

Jacobian to_jacobian(const EcPoint& p) {
  if (p.is_infinity()) return {};
  return {p.x, p.y, U256(1), false};
}

EcPoint to_affine(const Jacobian& p, const U256& prime) {
  if (p.infinity || p.z.is_zero()) return EcPoint::at_infinity();
  const U256 zinv = inv_mod_prime(p.z, prime);
  const U256 zinv2 = mul_mod(zinv, zinv, prime);
  const U256 zinv3 = mul_mod(zinv2, zinv, prime);
  return EcPoint::affine(mul_mod(p.x, zinv2, prime), mul_mod(p.y, zinv3, prime));
}

Jacobian jacobian_double(const Jacobian& p, const U256& prime, const U256& a) {
  if (p.infinity || p.y.is_zero()) return {};
  // Standard dbl-1998-cmo formulas.
  const U256 xx = mul_mod(p.x, p.x, prime);
  const U256 yy = mul_mod(p.y, p.y, prime);
  const U256 yyyy = mul_mod(yy, yy, prime);
  const U256 zz = mul_mod(p.z, p.z, prime);
  // S = 4*X*YY
  U256 s = mul_mod(p.x, yy, prime);
  s = add_mod(s, s, prime);
  s = add_mod(s, s, prime);
  // M = 3*XX + a*ZZ^2
  U256 m = add_mod(add_mod(xx, xx, prime), xx, prime);
  m = add_mod(m, mul_mod(a, mul_mod(zz, zz, prime), prime), prime);
  // X' = M^2 - 2*S
  U256 x3 = mul_mod(m, m, prime);
  x3 = sub_mod(x3, add_mod(s, s, prime), prime);
  // Y' = M*(S - X') - 8*YYYY
  U256 y3 = mul_mod(m, sub_mod(s, x3, prime), prime);
  U256 eight_yyyy = add_mod(yyyy, yyyy, prime);
  eight_yyyy = add_mod(eight_yyyy, eight_yyyy, prime);
  eight_yyyy = add_mod(eight_yyyy, eight_yyyy, prime);
  y3 = sub_mod(y3, eight_yyyy, prime);
  // Z' = 2*Y*Z
  U256 z3 = mul_mod(p.y, p.z, prime);
  z3 = add_mod(z3, z3, prime);
  return {x3, y3, z3, false};
}

Jacobian jacobian_add(const Jacobian& p, const Jacobian& q, const U256& prime, const U256& a) {
  if (p.infinity) return q;
  if (q.infinity) return p;
  // add-1998-cmo formulas.
  const U256 z1z1 = mul_mod(p.z, p.z, prime);
  const U256 z2z2 = mul_mod(q.z, q.z, prime);
  const U256 u1 = mul_mod(p.x, z2z2, prime);
  const U256 u2 = mul_mod(q.x, z1z1, prime);
  const U256 s1 = mul_mod(p.y, mul_mod(z2z2, q.z, prime), prime);
  const U256 s2 = mul_mod(q.y, mul_mod(z1z1, p.z, prime), prime);
  if (u1 == u2) {
    if (s1 == s2) return jacobian_double(p, prime, a);
    return {};  // P + (-P) = infinity
  }
  const U256 h = sub_mod(u2, u1, prime);
  const U256 r = sub_mod(s2, s1, prime);
  const U256 hh = mul_mod(h, h, prime);
  const U256 hhh = mul_mod(hh, h, prime);
  const U256 v = mul_mod(u1, hh, prime);
  // X3 = r^2 - HHH - 2*V
  U256 x3 = mul_mod(r, r, prime);
  x3 = sub_mod(x3, hhh, prime);
  x3 = sub_mod(x3, add_mod(v, v, prime), prime);
  // Y3 = r*(V - X3) - S1*HHH
  U256 y3 = mul_mod(r, sub_mod(v, x3, prime), prime);
  y3 = sub_mod(y3, mul_mod(s1, hhh, prime), prime);
  // Z3 = Z1*Z2*H
  const U256 z3 = mul_mod(mul_mod(p.z, q.z, prime), h, prime);
  return {x3, y3, z3, false};
}
}  // namespace

EcCurve::EcCurve(const char* name, std::size_t coord_size, U256 p, U256 a, U256 b, U256 gx,
                 U256 gy, U256 n)
    : name_(name), coord_size_(coord_size), p_(p), a_(a), b_(b), n_(n),
      g_(EcPoint::affine(gx, gy)) {}

const EcCurve& EcCurve::p256() {
  static const EcCurve curve(
      "P-256", 32,
      hx("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"),
      hx("ffffffff00000001000000000000000000000000fffffffffffffffffffffffc"),
      hx("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"),
      hx("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
      hx("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"),
      hx("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"));
  return curve;
}

const EcCurve& EcCurve::p192() {
  static const EcCurve curve(
      "P-192", 24,
      hx("fffffffffffffffffffffffffffffffeffffffffffffffff"),
      hx("fffffffffffffffffffffffffffffffefffffffffffffffc"),
      hx("64210519e59c80e70fa7e9ab72243049feb8deecc146b9b1"),
      hx("188da80eb03090f67cbf20eb43a18800f4ff0afd82ff1012"),
      hx("07192b95ffc8da78631011ed6b24cdd573f977a11e794811"),
      hx("ffffffffffffffffffffffff99def836146bc9b1b4d22831"));
  return curve;
}

bool EcCurve::on_curve(const EcPoint& point) const {
  if (point.is_infinity()) return false;
  if (point.x >= p_ || point.y >= p_) return false;
  const U256 lhs = mul_mod(point.y, point.y, p_);
  U256 rhs = mul_mod(mul_mod(point.x, point.x, p_), point.x, p_);
  rhs = add_mod(rhs, mul_mod(a_, point.x, p_), p_);
  rhs = add_mod(rhs, b_, p_);
  return lhs == rhs;
}

EcPoint EcCurve::add(const EcPoint& lhs, const EcPoint& rhs) const {
  return to_affine(jacobian_add(to_jacobian(lhs), to_jacobian(rhs), p_, a_), p_);
}

EcPoint EcCurve::double_point(const EcPoint& point) const {
  return to_affine(jacobian_double(to_jacobian(point), p_, a_), p_);
}

EcPoint EcCurve::multiply(const U256& k, const EcPoint& point) const {
  Jacobian result;  // infinity
  Jacobian addend = to_jacobian(point);
  const std::size_t bits = k.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = jacobian_double(result, p_, a_);
    if (k.bit(i)) result = jacobian_add(result, addend, p_, a_);
  }
  return to_affine(result, p_);
}

EcKeyPair generate_keypair(const EcCurve& curve, Rng& rng) {
  for (;;) {
    const auto raw = rng.bytes<32>();
    auto candidate = U256::from_bytes_be(BytesView(raw.data(), raw.size()));
    const U256 scalar = mod(U512::widen(*candidate), curve.order());
    if (scalar.is_zero()) continue;
    return EcKeyPair{scalar, curve.multiply(scalar, curve.generator())};
  }
}

std::optional<U256> ecdh_shared_secret(const EcCurve& curve, const U256& private_key,
                                       const EcPoint& peer_public) {
  if (!curve.on_curve(peer_public)) return std::nullopt;
  const EcPoint shared = curve.multiply(private_key, peer_public);
  if (shared.is_infinity()) return std::nullopt;
  return shared.x;
}

}  // namespace blap::crypto
