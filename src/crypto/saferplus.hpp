// saferplus.hpp — the SAFER+ block cipher (128-bit key, 8 rounds), plus the
// modified variant Ar' used by the Bluetooth legacy authentication functions.
//
// Bluetooth's legacy security algorithms E1 (authentication), E21/E22 (key
// generation) and E3 (encryption key) are all built from SAFER+ as specified
// in Bluetooth Core, Vol 2, Part H. Two variants appear:
//   * Ar  — plain SAFER+ encryption of a 16-byte block;
//   * Ar' — identical except the round-1 input is re-combined into the
//           round-3 input (making it a non-invertible hash building block).
//
// The implementation follows the SAFER+ AES-candidate reference description:
// exp/log tables over GF(257) with generator 45, the xor/add mixed key
// layers, the Pseudo-Hadamard Transform and the "Armenian shuffle"
// permutation, and the 3-bit-rotation key schedule with e-table biases.
// No official test vectors ship offline, so tests validate structure:
// determinism, key/plaintext avalanche, Ar invertibility via independent
// re-derivation, and Ar/Ar' divergence from round 3 onward.
#pragma once

#include <array>
#include <cstdint>

namespace blap::crypto {

class SaferPlus {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr std::size_t kRounds = 8;
  using Block = std::array<std::uint8_t, kBlockSize>;
  using Key = std::array<std::uint8_t, kKeySize>;

  explicit SaferPlus(const Key& key);

  /// Ar — plain SAFER+ encryption.
  [[nodiscard]] Block ar(const Block& input) const;

  /// Ar' — modified SAFER+ where the original input is re-added (using the
  /// same xor/add pattern as the key layers) to the input of round 3.
  [[nodiscard]] Block ar_prime(const Block& input) const;

  /// Access the exp table (45^i mod 257, with 256 -> 0); exposed for tests.
  [[nodiscard]] static const std::array<std::uint8_t, 256>& exp_table();
  /// Access the log table (inverse of exp); exposed for tests.
  [[nodiscard]] static const std::array<std::uint8_t, 256>& log_table();

 private:
  [[nodiscard]] Block run(const Block& input, bool prime) const;

  // 17 round keys: rounds r=0..7 use keys 2r and 2r+1; key 16 is the output
  // transform key.
  std::array<Block, 2 * kRounds + 1> subkeys_{};
};

}  // namespace blap::crypto
