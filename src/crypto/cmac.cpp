#include "crypto/cmac.hpp"

namespace blap::crypto {

namespace {
/// Left-shift a 128-bit value by one bit and conditionally XOR the CMAC
/// constant Rb (0x87) per RFC 4493 subkey generation.
Aes128::Block double_block(const Aes128::Block& in) {
  Aes128::Block out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    out[idx] = static_cast<std::uint8_t>((in[idx] << 1) | carry);
    carry = in[idx] >> 7;
  }
  if (carry) out[15] ^= 0x87;
  return out;
}
}  // namespace

Aes128::Block aes_cmac(const Aes128::Key& key, BytesView message) {
  const Aes128 cipher(key);
  const Aes128::Block l = cipher.encrypt(Aes128::Block{});
  const Aes128::Block k1 = double_block(l);
  const Aes128::Block k2 = double_block(k1);

  const std::size_t n = message.size();
  const bool complete_last = n > 0 && n % 16 == 0;
  const std::size_t blocks = complete_last ? n / 16 : n / 16 + 1;

  Aes128::Block x{};
  for (std::size_t b = 0; b + 1 < blocks; ++b) {
    for (std::size_t i = 0; i < 16; ++i) x[i] ^= message[16 * b + i];
    x = cipher.encrypt(x);
  }

  Aes128::Block last{};
  const std::size_t last_offset = (blocks - 1) * 16;
  if (complete_last) {
    for (std::size_t i = 0; i < 16; ++i) last[i] = message[last_offset + i] ^ k1[i];
  } else {
    const std::size_t last_len = n - last_offset;
    for (std::size_t i = 0; i < last_len; ++i) last[i] = message[last_offset + i];
    last[last_len] = 0x80;
    for (std::size_t i = 0; i < 16; ++i) last[i] ^= k2[i];
  }
  for (std::size_t i = 0; i < 16; ++i) x[i] ^= last[i];
  return cipher.encrypt(x);
}

}  // namespace blap::crypto
