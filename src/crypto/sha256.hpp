// sha256.hpp — FIPS 180-4 SHA-256.
//
// SHA-256 underlies every Secure Simple Pairing function: f1/f2/f3 are
// HMAC-SHA-256 constructions and g (the six-digit numeric-comparison value)
// is a bare SHA-256 truncation. Implemented from the FIPS 180-4 description;
// validated in tests against the standard "abc" / empty-string vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace blap::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Absorb more message bytes (streaming interface).
  void update(BytesView data);

  /// Finalize and return the digest. The object may not be reused afterwards
  /// without reset().
  [[nodiscard]] Digest finish();

  /// Restore the initial state for a fresh computation.
  void reset();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace blap::crypto
