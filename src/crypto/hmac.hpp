// hmac.hpp — HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//
// The Secure Simple Pairing check functions f1 (commitments), f2 (link key
// derivation) and f3 (DHKey checks), as well as the Secure Connections key
// derivation functions h3/h4/h5, are all HMAC-SHA-256 with varying keys.
// Validated in tests against RFC 4231 test cases.
#pragma once

#include "crypto/sha256.hpp"

namespace blap::crypto {

/// Compute HMAC-SHA-256(key, message).
[[nodiscard]] Sha256::Digest hmac_sha256(BytesView key, BytesView message);

}  // namespace blap::crypto
