// cmac.hpp — AES-CMAC (RFC 4493 / NIST SP 800-38B).
//
// CMAC is the MAC the Bluetooth Secure Connections feature builds its AES key
// hierarchy on; BLAP uses it for the HCI payload-encryption mitigation's
// integrity tag and exposes it as a general substrate primitive. Validated
// against the RFC 4493 example vectors.
#pragma once

#include "crypto/aes128.hpp"

namespace blap::crypto {

/// Compute AES-CMAC(key, message) — 16-byte tag.
[[nodiscard]] Aes128::Block aes_cmac(const Aes128::Key& key, BytesView message);

}  // namespace blap::crypto
