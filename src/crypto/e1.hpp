// e1.hpp — Bluetooth legacy security algorithms E1, E21, E22, E3.
//
// These SAFER+-based functions implement the challenge–response and key
// generation machinery of the BR/EDR Link Manager (Bluetooth Core, Vol 2,
// Part H §6):
//
//   E1(K, RAND, BD_ADDR)        -> (SRES, ACO)   LMP authentication
//   E21(RAND, BD_ADDR)          -> key           unit / combination keys
//   E22(RAND, PIN, BD_ADDR)     -> Kinit         legacy-PIN initialization key
//   E3(K, RAND, COF)            -> Kc            encryption key
//
// In BLAP's scenarios, E1 runs during every LMP authentication — which is
// exactly the moment the controller pulls the link key across the HCI and
// the HCI dump records it (attack 1), and exactly the exchange the attacker
// must drop *before* answering to avoid invalidating C's stored key.
#pragma once

#include "common/bdaddr.hpp"
#include "crypto/keys.hpp"
#include "crypto/saferplus.hpp"

namespace blap::crypto {

struct E1Output {
  Sres sres;  // 32-bit signed response returned to the verifier
  Aco aco;    // 96-bit ciphering offset, retained for E3
};

/// E1: authentication function. The verifier sends RAND; the claimant
/// (and the verifier, locally) computes E1(link key, RAND, claimant BD_ADDR).
[[nodiscard]] E1Output e1(const LinkKey& key, const Rand128& rand, const BdAddr& address);

/// E21: unit-key / combination-key contribution from one device.
[[nodiscard]] LinkKey e21(const Rand128& rand, const BdAddr& address);

/// Combination key from the two devices' E21 contributions (LK_K_A xor LK_K_B).
[[nodiscard]] LinkKey combination_key(const LinkKey& contribution_a, const LinkKey& contribution_b);

/// E22: initialization key for legacy PIN pairing. `pin` may be 1–16 bytes.
[[nodiscard]] LinkKey e22(const Rand128& rand, BytesView pin, const BdAddr& address);

/// E3: encryption key generation. COF is the 96-bit ciphering offset — the
/// ACO from the most recent E1 run (or BD_ADDR-derived for broadcast keys).
[[nodiscard]] EncryptionKey e3(const LinkKey& key, const Rand128& rand, const Aco& cof);

/// Encryption key size reduction to `bytes` (1..16). BLAP models the KNOB
/// negotiation surface with a simple truncation-and-zero-fill reduction (the
/// spec's polynomial-modulo construction is substituted; the security
/// property under study — effective entropy — is preserved).
[[nodiscard]] EncryptionKey shorten_key(const EncryptionKey& key, std::size_t bytes);

}  // namespace blap::crypto
