#include "crypto/hmac.hpp"

namespace blap::crypto {

Sha256::Digest hmac_sha256(BytesView key, BytesView message) {
  std::array<std::uint8_t, Sha256::kBlockSize> block_key{};
  if (key.size() > Sha256::kBlockSize) {
    const auto digest = Sha256::hash(key);
    std::copy(digest.begin(), digest.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  std::array<std::uint8_t, Sha256::kBlockSize> ipad{};
  std::array<std::uint8_t, Sha256::kBlockSize> opad{};
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

}  // namespace blap::crypto
