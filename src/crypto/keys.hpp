// keys.hpp — shared key material types for the BR/EDR security architecture.
//
// The link key is *the* secret of classic Bluetooth: LMP authentication
// challenges prove possession of it and the encryption key is derived from
// it. BLAP's whole first attack is about this 16-byte value crossing the HCI
// in plaintext.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace blap::crypto {

/// 128-bit link key (combination key / unit key / SSP-derived key).
using LinkKey = std::array<std::uint8_t, 16>;

/// 128-bit encryption key produced by E3 / h3.
using EncryptionKey = std::array<std::uint8_t, 16>;

/// 96-bit Authenticated Ciphering Offset from E1 (feeds E3).
using Aco = std::array<std::uint8_t, 12>;

/// 32-bit Signed RESponse from the LMP challenge-response.
using Sres = std::array<std::uint8_t, 4>;

/// 128-bit random challenge (AU_RAND / EN_RAND / pairing nonces).
using Rand128 = std::array<std::uint8_t, 16>;

[[nodiscard]] inline std::string key_to_hex(BytesView key) { return hex(key); }

[[nodiscard]] inline std::optional<LinkKey> link_key_from_hex(std::string_view text) {
  auto bytes = unhex(text);
  if (!bytes || bytes->size() != 16) return std::nullopt;
  LinkKey key{};
  std::copy(bytes->begin(), bytes->end(), key.begin());
  return key;
}

[[nodiscard]] inline LinkKey random_link_key(Rng& rng) { return rng.bytes<16>(); }

/// Bluetooth link key type codes reported by HCI_Link_Key_Notification.
enum class LinkKeyType : std::uint8_t {
  kCombination = 0x00,
  kLocalUnit = 0x01,
  kRemoteUnit = 0x02,
  kDebugCombination = 0x03,
  kUnauthenticatedCombinationP192 = 0x04,  // SSP Just Works / no MITM protection
  kAuthenticatedCombinationP192 = 0x05,    // SSP with MITM protection
  kChangedCombination = 0x06,
  kUnauthenticatedCombinationP256 = 0x07,  // Secure Connections, Just Works
  kAuthenticatedCombinationP256 = 0x08,    // Secure Connections with MITM
};

[[nodiscard]] const char* to_string(LinkKeyType type);

inline const char* to_string(LinkKeyType type) {
  switch (type) {
    case LinkKeyType::kCombination: return "Combination";
    case LinkKeyType::kLocalUnit: return "Local Unit";
    case LinkKeyType::kRemoteUnit: return "Remote Unit";
    case LinkKeyType::kDebugCombination: return "Debug Combination";
    case LinkKeyType::kUnauthenticatedCombinationP192: return "Unauthenticated Combination (P-192)";
    case LinkKeyType::kAuthenticatedCombinationP192: return "Authenticated Combination (P-192)";
    case LinkKeyType::kChangedCombination: return "Changed Combination";
    case LinkKeyType::kUnauthenticatedCombinationP256: return "Unauthenticated Combination (P-256)";
    case LinkKeyType::kAuthenticatedCombinationP256: return "Authenticated Combination (P-256)";
  }
  return "?";
}

}  // namespace blap::crypto
