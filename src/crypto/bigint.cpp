#include "crypto/bigint.hpp"

namespace blap::crypto {

__extension__ typedef unsigned __int128 u128;

std::optional<U256> U256::from_hex(std::string_view hex) {
  if (hex.empty() || hex.size() > 64) return std::nullopt;
  U256 out;
  std::size_t nibble = 0;  // counted from the least-significant end
  for (std::size_t i = hex.size(); i-- > 0;) {
    const char c = hex[i];
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else return std::nullopt;
    out.w_[nibble / 16] |= static_cast<std::uint64_t>(v) << (4 * (nibble % 16));
    ++nibble;
  }
  return out;
}

std::optional<U256> U256::from_bytes_be(BytesView bytes) {
  if (bytes.size() > 32) return std::nullopt;
  U256 out;
  std::size_t bit = 0;
  for (std::size_t i = bytes.size(); i-- > 0;) {
    out.w_[bit / 64] |= static_cast<std::uint64_t>(bytes[i]) << (bit % 64);
    bit += 8;
  }
  return out;
}

std::array<std::uint8_t, 32> U256::to_bytes_be() const {
  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < 32; ++i)
    out[31 - i] = static_cast<std::uint8_t>(w_[i / 8] >> (8 * (i % 8)));
  return out;
}

std::string U256::to_hex() const {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(64, '0');
  for (std::size_t i = 0; i < 64; ++i) {
    const std::size_t nibble = 63 - i;
    out[i] = digits[(w_[nibble / 16] >> (4 * (nibble % 16))) & 0xF];
  }
  return out;
}

bool U256::is_zero() const { return (w_[0] | w_[1] | w_[2] | w_[3]) == 0; }

bool U256::bit(std::size_t i) const { return (w_[i / 64] >> (i % 64)) & 1; }

std::size_t U256::bit_length() const {
  for (std::size_t limb = kLimbs; limb-- > 0;) {
    if (w_[limb] != 0)
      return 64 * limb + (64 - static_cast<std::size_t>(__builtin_clzll(w_[limb])));
  }
  return 0;
}

std::uint64_t U256::add(const U256& a, const U256& b, U256& out) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const u128 s = static_cast<u128>(a.w_[i]) + b.w_[i] + carry;
    out.w_[i] = static_cast<std::uint64_t>(s);
    carry = static_cast<std::uint64_t>(s >> 64);
  }
  return carry;
}

std::uint64_t U256::sub(const U256& a, const U256& b, U256& out) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const u128 d = static_cast<u128>(a.w_[i]) - b.w_[i] - borrow;
    out.w_[i] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) ? 1 : 0;
  }
  return borrow;
}

std::strong_ordering operator<=>(const U256& a, const U256& b) {
  for (std::size_t i = U256::kLimbs; i-- > 0;) {
    if (a.w_[i] != b.w_[i]) return a.w_[i] <=> b.w_[i];
  }
  return std::strong_ordering::equal;
}

U512 U512::mul(const U256& a, const U256& b) {
  U512 out;
  for (std::size_t i = 0; i < U256::kLimbs; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < U256::kLimbs; ++j) {
      const u128 cur = static_cast<u128>(a.limbs()[i]) * b.limbs()[j] + out.w_[i + j] + carry;
      out.w_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.w_[i + U256::kLimbs] += carry;
  }
  return out;
}

U512 U512::widen(const U256& v) {
  U512 out;
  for (std::size_t i = 0; i < U256::kLimbs; ++i) out.w_[i] = v.limbs()[i];
  return out;
}

bool U512::bit(std::size_t i) const { return (w_[i / 64] >> (i % 64)) & 1; }

std::size_t U512::bit_length() const {
  for (std::size_t limb = kLimbs; limb-- > 0;) {
    if (w_[limb] != 0)
      return 64 * limb + (64 - static_cast<std::size_t>(__builtin_clzll(w_[limb])));
  }
  return 0;
}

U256 mod(const U512& value, const U256& modulus) {
  // Knuth TAOCP Vol. 2, Algorithm D, specialized to return the remainder.
  // Limbs are 64-bit; the dividend has at most 8 limbs, the divisor at most
  // 4. The single-limb divisor case short-circuits to a 128/64 division.
  const auto& vw = modulus.limbs();
  std::size_t k = U256::kLimbs;
  while (k > 0 && vw[k - 1] == 0) --k;
  if (k == 0) return U256();  // undefined; caller guarantees nonzero

  const auto& uw_in = value.limbs();
  std::size_t m = U512::kLimbs;
  while (m > 0 && uw_in[m - 1] == 0) --m;
  if (m == 0) return U256();

  if (k == 1) {
    const std::uint64_t d = vw[0];
    std::uint64_t rem = 0;
    for (std::size_t i = m; i-- > 0;) {
      const u128 cur = (static_cast<u128>(rem) << 64) | uw_in[i];
      rem = static_cast<std::uint64_t>(cur % d);
    }
    return U256(rem);
  }

  // Normalize so the divisor's top bit is set.
  const int shift = __builtin_clzll(vw[k - 1]);
  std::uint64_t v[U256::kLimbs] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < k; ++i) {
    v[i] = vw[i] << shift;
    if (shift != 0 && i > 0) v[i] |= vw[i - 1] >> (64 - shift);
  }
  std::uint64_t u[U512::kLimbs + 1] = {};
  for (std::size_t i = 0; i < m; ++i) {
    u[i] |= uw_in[i] << shift;
    if (shift != 0 && i + 1 <= U512::kLimbs) u[i + 1] = uw_in[i] >> (64 - shift);
  }
  std::size_t un = m + 1;  // normalized dividend length (top limb may be 0)

  if (un <= k) un = k + 1;  // defensive; guarantees at least one quotient digit

  for (std::size_t j = un - k; j-- > 0;) {
    // Estimate q̂ from the top two dividend limbs and the top divisor limb.
    const u128 top = (static_cast<u128>(u[j + k]) << 64) | u[j + k - 1];
    u128 qhat = top / v[k - 1];
    u128 rhat = top % v[k - 1];
    while (qhat > 0xFFFFFFFFFFFFFFFFULL ||
           (k >= 2 && qhat * v[k - 2] > ((rhat << 64) | u[j + k - 2]))) {
      --qhat;
      rhat += v[k - 1];
      if (rhat > 0xFFFFFFFFFFFFFFFFULL) break;
    }

    // u[j .. j+k] -= qhat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const u128 product = qhat * v[i] + carry;
      carry = product >> 64;
      const u128 sub = static_cast<u128>(u[j + i]) - static_cast<std::uint64_t>(product) - borrow;
      u[j + i] = static_cast<std::uint64_t>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    const u128 sub = static_cast<u128>(u[j + k]) - carry - borrow;
    u[j + k] = static_cast<std::uint64_t>(sub);
    if (sub >> 64) {
      // q̂ was one too large: add the divisor back.
      u128 add_carry = 0;
      for (std::size_t i = 0; i < k; ++i) {
        const u128 sum = static_cast<u128>(u[j + i]) + v[i] + add_carry;
        u[j + i] = static_cast<std::uint64_t>(sum);
        add_carry = sum >> 64;
      }
      u[j + k] = static_cast<std::uint64_t>(u[j + k] + add_carry);
    }
  }

  // Denormalize the remainder (low k limbs of u).
  std::array<std::uint64_t, U256::kLimbs> rem{};
  for (std::size_t i = 0; i < k; ++i) {
    rem[i] = u[i] >> shift;
    if (shift != 0 && i + 1 < U512::kLimbs + 1) {
      rem[i] |= u[i + 1] << (64 - shift);
    }
  }
  // Mask out any divisor bits above k limbs leaked by the final OR.
  for (std::size_t i = k; i < U256::kLimbs; ++i) rem[i] = 0;
  return U256(rem);
}

U256 mod_binary_reference(const U512& value, const U256& modulus) {
  // Binary long division: scan bits from most significant, shifting the
  // remainder left and subtracting the modulus whenever it fits.
  U256 rem;
  const std::size_t bits = value.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    // rem = rem << 1 | bit(i); a carry out of the shift means rem >= 2^256,
    // which is >= modulus for any modulus we use, so subtract immediately.
    std::uint64_t carry = rem.bit(255) ? 1 : 0;
    U256 shifted;
    U256::add(rem, rem, shifted);
    if (value.bit(i)) {
      U256 one(1);
      U256::add(shifted, one, shifted);
    }
    rem = shifted;
    if (carry || rem >= modulus) {
      U256 reduced;
      U256::sub(rem, modulus, reduced);
      rem = reduced;
      // After one subtraction rem < modulus is guaranteed because the
      // pre-shift remainder was < modulus (so shifted < 2*modulus + 1; for
      // odd moduli that is <= 2*modulus - 1, one subtraction suffices).
    }
  }
  return rem;
}

U256 add_mod(const U256& a, const U256& b, const U256& m) {
  U256 sum;
  const std::uint64_t carry = U256::add(a, b, sum);
  if (carry || sum >= m) {
    U256 out;
    U256::sub(sum, m, out);
    return out;
  }
  return sum;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) {
  U256 diff;
  const std::uint64_t borrow = U256::sub(a, b, diff);
  if (borrow) {
    U256 out;
    U256::add(diff, m, out);
    return out;
  }
  return diff;
}

U256 mul_mod(const U256& a, const U256& b, const U256& m) { return mod(U512::mul(a, b), m); }

U256 pow_mod(const U256& a, const U256& e, const U256& m) {
  U256 result(1);
  U256 base = mod(U512::widen(a), m);
  const std::size_t bits = e.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (e.bit(i)) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
  }
  return result;
}

U256 inv_mod_prime(const U256& a, const U256& p) {
  U256 exponent;
  U256 two(2);
  U256::sub(p, two, exponent);
  return pow_mod(a, exponent, p);
}

}  // namespace blap::crypto
