#include "crypto/e0.hpp"

namespace blap::crypto {

namespace {
constexpr unsigned kLengths[4] = {25, 31, 33, 39};
// Feedback tap masks for x^25+x^20+x^12+x^8+1, x^31+x^24+x^16+x^12+1,
// x^33+x^28+x^24+x^4+1, x^39+x^36+x^28+x^4+1 (bit i = stage i, Fibonacci
// configuration; feedback = parity of masked stages).
constexpr std::uint64_t kTaps[4] = {
    (1ULL << 24) | (1ULL << 19) | (1ULL << 11) | (1ULL << 7),
    (1ULL << 30) | (1ULL << 23) | (1ULL << 15) | (1ULL << 11),
    (1ULL << 32) | (1ULL << 27) | (1ULL << 23) | (1ULL << 3),
    (1ULL << 38) | (1ULL << 35) | (1ULL << 27) | (1ULL << 3),
};
// Output taps (stage index whose bit feeds the combiner).
constexpr int kOutputTap[4] = {24, 24, 32, 32};

// T1 is the identity on the 2-bit state; T2 maps (x1,x0) -> (x0, x1^x0).
std::uint8_t t2(std::uint8_t c) {
  const std::uint8_t x1 = (c >> 1) & 1;
  const std::uint8_t x0 = c & 1;
  return static_cast<std::uint8_t>((x0 << 1) | (x1 ^ x0));
}
}  // namespace

E0Cipher::E0Cipher(const EncryptionKey& key, const BdAddr& master, std::uint32_t clock26) {
  // Spread the 16 key bytes, 6 address bytes and 4 clock bytes across the
  // four registers round-robin (documented substitution for the spec's
  // bit-exact loading; see header).
  Bytes seed;
  seed.insert(seed.end(), key.begin(), key.end());
  const auto& addr = master.bytes();
  seed.insert(seed.end(), addr.begin(), addr.end());
  for (int i = 0; i < 4; ++i) seed.push_back(static_cast<std::uint8_t>(clock26 >> (8 * i)));

  for (std::size_t i = 0; i < seed.size(); ++i) {
    const std::size_t reg = i % 4;
    lfsr_[reg] ^= static_cast<std::uint64_t>(seed[i]) << ((i / 4 * 8) % kLengths[reg]);
    lfsr_[reg] &= (1ULL << kLengths[reg]) - 1;
  }
  // An all-zero LFSR would stay stuck; seed a single bit in that case.
  for (int r = 0; r < 4; ++r)
    if (lfsr_[r] == 0) lfsr_[r] = 1ULL << r;

  // 200 warm-up clocks, discarding output (matches the spec's warm-up count).
  for (int i = 0; i < 200; ++i) clock();
}

void E0Cipher::clock() {
  std::uint8_t x[4];
  for (int r = 0; r < 4; ++r) {
    x[r] = static_cast<std::uint8_t>((lfsr_[r] >> kOutputTap[r]) & 1);
    const auto fb = static_cast<std::uint64_t>(__builtin_parityll(lfsr_[r] & kTaps[r]));
    lfsr_[r] = ((lfsr_[r] << 1) | fb) & ((1ULL << kLengths[r]) - 1);
  }
  const std::uint8_t y = static_cast<std::uint8_t>(x[0] + x[1] + x[2] + x[3]);  // 0..4
  last_output_ = static_cast<std::uint8_t>((y & 1) ^ (c_ & 1));
  const std::uint8_t s_next = static_cast<std::uint8_t>((y + c_) >> 1);  // 0..3
  const std::uint8_t c_next = static_cast<std::uint8_t>((s_next ^ c_ ^ t2(c_prev_)) & 3);
  c_prev_ = c_;
  c_ = c_next;
}

std::uint8_t E0Cipher::next_bit() {
  clock();
  return last_output_;
}

std::uint8_t E0Cipher::next_byte() {
  std::uint8_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<std::uint8_t>(next_bit() << i);
  return out;
}

void E0Cipher::crypt(Bytes& data) {
  for (auto& b : data) b ^= next_byte();
}

}  // namespace blap::crypto
