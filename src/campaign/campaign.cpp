#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace blap::campaign {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof buf) {
    va_end(args_copy);
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  // The stack buffer clipped the output (long campaign labels); reformat
  // into an exactly-sized heap buffer instead of truncating silently.
  std::vector<char> big(static_cast<std::size_t>(n) + 1);
  std::vsnprintf(big.data(), big.size(), fmt, args_copy);
  va_end(args_copy);
  out.append(big.data(), static_cast<std::size_t>(n));
}

/// Shortest %.17g-style representation that still round-trips is overkill
/// here; fixed %.6f keeps the emit byte-stable and diffable.
void append_double(std::string& out, double v) { append_fmt(out, "%.6f", v); }

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t trial_seed(std::uint64_t root_seed, std::uint64_t index) {
  // The (index+1)-th SplitMix64 output without stepping through the stream:
  // the generator's state after k steps is root + k*gamma.
  std::uint64_t state = root_seed + index * 0x9E3779B97F4A7C15ULL;
  return splitmix64(state);
}

unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("BLAP_JOBS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Histogram make_histogram(const std::vector<double>& values, std::size_t bucket_count) {
  Histogram h;
  if (values.empty() || bucket_count == 0) return h;
  // NaN poisons min/max and makes the bucket index computation UB; ±inf
  // makes every width degenerate. Histogram only the finite samples.
  std::vector<double> finite;
  finite.reserve(values.size());
  for (double v : values)
    if (std::isfinite(v)) finite.push_back(v);
  if (finite.empty()) return h;
  h.min = *std::min_element(finite.begin(), finite.end());
  h.max = *std::max_element(finite.begin(), finite.end());
  double sum = 0.0;
  for (double v : finite) sum += v;
  h.mean = sum / static_cast<double>(finite.size());

  const double width = (h.max - h.min) / static_cast<double>(bucket_count);
  if (width <= 0.0) {
    h.buckets.push_back(HistogramBucket{h.min, h.max, finite.size()});
    return h;
  }
  h.buckets.resize(bucket_count);
  for (std::size_t b = 0; b < bucket_count; ++b) {
    h.buckets[b].lo = h.min + static_cast<double>(b) * width;
    h.buckets[b].hi = h.min + static_cast<double>(b + 1) * width;
  }
  for (double v : finite) {
    std::size_t b = static_cast<std::size_t>((v - h.min) / width);
    if (b >= bucket_count) b = bucket_count - 1;  // v == max lands in the last
    ++h.buckets[b].count;
  }
  return h;
}

WilsonInterval wilson95(std::size_t successes, std::size_t trials) {
  if (trials == 0) return {};
  constexpr double z = 1.959963984540054;  // 97.5th percentile of N(0,1)
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

std::string CampaignSummary::to_json(bool per_trial) const {
  std::string out;
  out.reserve(512 + (per_trial ? results.size() * 64 : 0));
  out += "{\n";
  append_fmt(out, "  \"campaign\": \"%s\",\n", label.c_str());
  append_fmt(out, "  \"root_seed\": %llu,\n",
             static_cast<unsigned long long>(root_seed));
  append_fmt(out, "  \"trials\": %zu,\n", trials);
  append_fmt(out, "  \"successes\": %zu,\n", successes);
  out += "  \"success_rate\": ";
  append_double(out, success_rate);
  out += ",\n  \"wilson95\": [";
  append_double(out, ci.low);
  out += ", ";
  append_double(out, ci.high);
  out += "],\n  \"value_mean\": ";
  append_double(out, value_mean);
  out += ",\n  \"virtual_time_us\": {\"min\": ";
  append_double(out, virtual_time.min);
  out += ", \"max\": ";
  append_double(out, virtual_time.max);
  out += ", \"mean\": ";
  append_double(out, virtual_time.mean);
  out += ", \"histogram\": [";
  for (std::size_t b = 0; b < virtual_time.buckets.size(); ++b) {
    if (b != 0) out += ", ";
    const auto& bucket = virtual_time.buckets[b];
    out += "{\"lo\": ";
    append_double(out, bucket.lo);
    out += ", \"hi\": ";
    append_double(out, bucket.hi);
    append_fmt(out, ", \"count\": %zu}", bucket.count);
  }
  out += "]}";
  if (has_metrics) {
    out += ",\n  \"metrics\": ";
    out += metrics.to_json("  ");
  }
  if (per_trial) {
    out += ",\n  \"per_trial\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const TrialResult& r = results[i];
      append_fmt(out, "    {\"index\": %zu, \"seed\": %llu, \"success\": %s, ",
                 r.index, static_cast<unsigned long long>(r.seed),
                 r.success ? "true" : "false");
      out += "\"value\": ";
      append_double(out, r.value);
      append_fmt(out, ", \"virtual_end_us\": %llu}%s\n",
                 static_cast<unsigned long long>(r.virtual_end),
                 i + 1 < results.size() ? "," : "");
    }
    out += "  ]";
  }
  out += "\n}\n";
  return out;
}

std::string CampaignSummary::to_csv() const {
  std::string out = "index,seed,success,value,virtual_end_us\n";
  out.reserve(out.size() + results.size() * 48);
  for (const TrialResult& r : results) {
    append_fmt(out, "%zu,%llu,%d,", r.index,
               static_cast<unsigned long long>(r.seed), r.success ? 1 : 0);
    append_double(out, r.value);
    append_fmt(out, ",%llu\n", static_cast<unsigned long long>(r.virtual_end));
  }
  return out;
}

std::string CampaignSummary::timing_report() const {
  std::string out;
  const double wall_s = static_cast<double>(wall_total_ns) * 1e-9;
  const double per_trial_ms =
      trials > 0 ? static_cast<double>(wall_total_ns) * 1e-6 /
                       static_cast<double>(trials)
                 : 0.0;
  const double rate = wall_s > 0.0 ? static_cast<double>(trials) / wall_s : 0.0;
  append_fmt(out,
             "%s: %zu trials on %u worker(s) in %.3f s wall "
             "(%.2f ms/trial, %.1f trials/s; per-trial wall %.2f..%.2f ms)",
             label.c_str(), trials, jobs_used, wall_s, per_trial_ms, rate,
             wall_time.min * 1e-6, wall_time.max * 1e-6);
  return out;
}

CampaignSummary run_campaign(const CampaignConfig& config, const TrialFn& fn) {
  CampaignSummary summary;
  summary.label = config.label;
  summary.root_seed = config.root_seed;
  summary.trials = config.trials;
  if (config.trials == 0) return summary;

  const SeedFn& derive = config.seed_fn ? config.seed_fn : SeedFn(trial_seed);
  const unsigned jobs = std::max(
      1u, std::min(resolve_jobs(config.jobs),
                   static_cast<unsigned>(std::min<std::size_t>(
                       config.trials, 1u << 16))));
  summary.jobs_used = jobs;

  summary.results.assign(config.trials, TrialResult{});
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= config.trials) break;
      TrialSpec spec{i, derive(config.root_seed, i)};
      const auto t0 = Clock::now();
      TrialResult r = fn(spec);
      const auto t1 = Clock::now();
      r.index = spec.index;
      r.seed = spec.seed;
      r.wall_ns = elapsed_ns(t0, t1);
      summary.results[i] = std::move(r);
    }
  };

  const auto batch_start = Clock::now();
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  summary.wall_total_ns = elapsed_ns(batch_start, Clock::now());

  // Sequential, index-ordered aggregation: deterministic for any `jobs`.
  std::vector<double> virtual_ends;
  std::vector<double> walls;
  virtual_ends.reserve(config.trials);
  walls.reserve(config.trials);
  double value_sum = 0.0;
  for (const TrialResult& r : summary.results) {
    if (r.success) ++summary.successes;
    value_sum += r.value;
    virtual_ends.push_back(static_cast<double>(r.virtual_end));
    walls.push_back(static_cast<double>(r.wall_ns));
    if (r.metrics != nullptr && !r.metrics->empty()) {
      summary.metrics.merge_from(*r.metrics);
      summary.has_metrics = true;
    }
  }
  // trials == 0 must emit clean zeros, not 0/0 NaN, in the JSON/CSV.
  summary.success_rate =
      config.trials != 0
          ? static_cast<double>(summary.successes) / static_cast<double>(config.trials)
          : 0.0;
  summary.ci = wilson95(summary.successes, config.trials);
  summary.value_mean =
      config.trials != 0 ? value_sum / static_cast<double>(config.trials) : 0.0;
  summary.virtual_time = make_histogram(virtual_ends, config.histogram_buckets);
  summary.wall_time = make_histogram(walls, config.histogram_buckets);
  return summary;
}

}  // namespace blap::campaign
