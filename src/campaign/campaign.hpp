// campaign.hpp — parallel Monte-Carlo trial campaigns.
//
// BLAP's evaluation numbers (Table II success rates, the race-model
// baselines, mitigation ablations) are estimates over hundreds of
// independent seeded trials. A Campaign runs such a batch across a worker
// thread pool while keeping the results bit-identical for ANY worker count:
//
//   * each trial's seed is a pure function of (root_seed, trial index) —
//     by default a SplitMix64 stream — so no trial ever observes which
//     thread or in which order it ran;
//   * trials write into a pre-sized results vector at their own index;
//     workers share nothing else but an atomic "next trial" counter;
//   * aggregation (success counts, Wilson 95% CI, virtual-time histogram,
//     JSON/CSV emit) runs sequentially over the index-ordered results, so
//     the aggregate output is a pure function of the root seed.
//
// Wall-clock timing is recorded per trial for throughput reporting, but is
// deliberately excluded from to_json()/to_csv() — those must be
// byte-identical across re-runs and across BLAP_JOBS settings.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/scheduler.hpp"
#include "obs/obs.hpp"

namespace blap::campaign {

/// SplitMix64 step: advances `state` and returns the next output. Used both
/// as the default per-trial seed derivation and anywhere a cheap, well-mixed
/// 64-bit stream is needed.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless per-trial seed: the `index`-th output of the SplitMix64 stream
/// rooted at `root_seed`. Identical for every thread count by construction.
std::uint64_t trial_seed(std::uint64_t root_seed, std::uint64_t index);

/// Worker count resolution: explicit request > BLAP_JOBS env >
/// hardware_concurrency (min 1).
unsigned resolve_jobs(unsigned requested = 0);

/// One trial's identity, handed to the trial function.
struct TrialSpec {
  std::size_t index = 0;
  std::uint64_t seed = 0;
};

/// What a trial reports back. `success` drives the rate/CI aggregation;
/// `value` is a free scalar (e.g. crack time) aggregated as a mean;
/// `virtual_end` is the simulation clock when the trial finished.
struct TrialResult {
  bool success = false;
  double value = 0.0;
  SimTime virtual_end = 0;
  /// Optional per-trial metrics snapshot (a trial that ran its Simulation
  /// with observability on fills this). Snapshots are merged index-ordered
  /// into CampaignSummary::metrics; shared_ptr keeps TrialResult cheap to
  /// move/copy for trials that don't use it.
  std::shared_ptr<const obs::MetricsSnapshot> metrics;
  // Filled in by the engine:
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::uint64_t wall_ns = 0;  // excluded from deterministic emits
};

using TrialFn = std::function<TrialResult(const TrialSpec&)>;
/// Seed derivation hook: (root_seed, index) -> trial seed. The default is
/// trial_seed(); benches that predate the engine install `root + index` to
/// stay bit-compatible with their historical sequential seeding.
using SeedFn = std::function<std::uint64_t(std::uint64_t, std::size_t)>;

struct CampaignConfig {
  std::string label = "campaign";
  std::size_t trials = 100;
  std::uint64_t root_seed = 1;
  /// 0 = resolve_jobs() (BLAP_JOBS env, else hardware_concurrency).
  unsigned jobs = 0;
  SeedFn seed_fn;  // null = trial_seed (SplitMix64)
  std::size_t histogram_buckets = 12;
};

struct HistogramBucket {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t count = 0;
};

struct Histogram {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::vector<HistogramBucket> buckets;
};

/// Equal-width histogram over `values`; empty input yields empty buckets.
Histogram make_histogram(const std::vector<double>& values, std::size_t bucket_count);

struct WilsonInterval {
  double low = 0.0;
  double high = 0.0;
};

/// Wilson score 95% confidence interval for a binomial proportion.
WilsonInterval wilson95(std::size_t successes, std::size_t trials);

struct CampaignSummary {
  std::string label;
  std::uint64_t root_seed = 0;
  std::size_t trials = 0;
  std::size_t successes = 0;
  double success_rate = 0.0;
  WilsonInterval ci;
  double value_mean = 0.0;
  Histogram virtual_time;  // over virtual_end, microseconds
  /// Merge of every trial's metrics snapshot (counters summed, gauges
  /// maxed, histogram buckets summed — all order-independent, so identical
  /// for any worker count). has_metrics gates the to_json() block.
  obs::MetricsSnapshot metrics;
  bool has_metrics = false;
  std::vector<TrialResult> results;  // index order

  // Throughput bookkeeping — never part of to_json()/to_csv().
  unsigned jobs_used = 1;
  std::uint64_t wall_total_ns = 0;  // whole-batch wall clock
  Histogram wall_time;              // per-trial wall ns

  /// Deterministic JSON: pure function of (label, root seed, trial results).
  /// With per_trial, includes an array of {index, seed, success, value,
  /// virtual_end_us} rows.
  [[nodiscard]] std::string to_json(bool per_trial = false) const;
  /// Deterministic CSV: one row per trial, header included.
  [[nodiscard]] std::string to_csv() const;
  /// Human-readable wall-clock/throughput report (NOT deterministic).
  [[nodiscard]] std::string timing_report() const;
};

/// Run `config.trials` independent trials of `fn` across a worker pool and
/// aggregate. `fn` must be safe to call concurrently from multiple threads
/// on distinct TrialSpecs (each trial should build its own Simulation from
/// spec.seed and share nothing).
CampaignSummary run_campaign(const CampaignConfig& config, const TrialFn& fn);

}  // namespace blap::campaign
