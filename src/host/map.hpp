// map.hpp — Message Access Profile (simplified) over L2CAP.
//
// MAP is the third "sensitive data" service the paper's system model names
// ("Phone Book Access Profile (PBAP), Hands-Free Profile, and Message
// Access Profile (MAP)"): it exposes the phone's SMS store to paired
// accessories (car-kits display and read out messages). BLAP models it as
// an authenticated L2CAP service with a two-step protocol — list message
// handles, then fetch message bodies individually — so exfiltration needs
// multiple round trips, unlike PBAP's single pull.
//
// Simplification: real MAP is OBEX over RFCOMM with MNS notifications; the
// security property (profile gated on link authentication) is what BLAP
// studies and is preserved.
//
// Channel messages:
//   list request  : 0x20
//   list response : 0x21 | count u8 | count x handle u16
//   get request   : 0x22 | handle u16
//   get response  : 0x23 | handle u16 | found u8 | len u16 | body
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "host/l2cap.hpp"

namespace blap::host {

namespace psm_ext3 {
inline constexpr std::uint16_t kMap = 0x1007;
}

class MapProfile {
 public:
  using ListCallback = std::function<void(std::optional<std::vector<std::uint16_t>>)>;
  using GetCallback = std::function<void(std::optional<std::string>)>;

  /// Server side: the message store (handle -> body).
  void add_message(std::uint16_t handle, std::string body) {
    messages_[handle] = std::move(body);
  }
  void clear_messages() { messages_.clear(); }
  [[nodiscard]] std::size_t message_count() const { return messages_.size(); }
  [[nodiscard]] int serves() const { return serves_; }

  /// Handle an inbound MAP message if it is a request; false otherwise.
  bool handle_server(L2cap& l2cap, const L2capChannel& channel, BytesView data);

  /// Client side: request the handle list / one message body.
  void request_list(L2cap& l2cap, const L2capChannel& channel);
  void request_message(L2cap& l2cap, const L2capChannel& channel, std::uint16_t handle);

  /// Feed data arriving on a MAP channel we initiated.
  void on_client_data(BytesView data);

  void set_list_callback(ListCallback callback) { list_callback_ = std::move(callback); }
  void set_get_callback(GetCallback callback) { get_callback_ = std::move(callback); }

  /// Snapshot support (callback handling as in PanProfile).
  [[nodiscard]] bool quiescent() const { return !list_callback_ && !get_callback_; }
  void reset_pending() {
    list_callback_ = nullptr;
    get_callback_ = nullptr;
  }
  void save_state(state::StateWriter& w) const {
    w.u64(messages_.size());
    for (const auto& [handle, body] : messages_) {
      w.u16(handle);
      w.str(body);
    }
    w.u32(static_cast<std::uint32_t>(serves_));
  }
  void load_state(state::StateReader& r) {
    messages_.clear();
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      const std::uint16_t handle = r.u16();
      messages_[handle] = r.str();
    }
    serves_ = static_cast<int>(r.u32());
  }

 private:
  std::map<std::uint16_t, std::string> messages_;
  ListCallback list_callback_;
  GetCallback get_callback_;
  int serves_ = 0;
};

}  // namespace blap::host
