#include "host/l2cap.hpp"

#include "common/log.hpp"

namespace blap::host {

namespace {
constexpr std::uint16_t kSignalingCid = 0x0001;
constexpr std::uint8_t kConnectReq = 0x02;
constexpr std::uint8_t kConnectRsp = 0x03;
constexpr std::uint8_t kDisconnectReq = 0x06;
constexpr std::uint8_t kEchoReq = 0x08;
constexpr std::uint8_t kEchoRsp = 0x09;
constexpr std::uint16_t kResultSuccess = 0x0000;
constexpr std::uint16_t kResultPsmNotSupported = 0x0002;
constexpr std::uint16_t kResultSecurityBlock = 0x0003;
}  // namespace

void L2cap::register_service(std::uint16_t psm_value, Service service) {
  services_[psm_value] = std::move(service);
}

std::uint16_t L2cap::allocate_cid() {
  if (next_cid_ == 0) next_cid_ = 0x0040;
  return next_cid_++;
}

void L2cap::connect_channel(hci::ConnectionHandle handle, std::uint16_t psm_value,
                            ConnectCallback callback) {
  const std::uint8_t id = next_id_++;
  const std::uint16_t scid = allocate_cid();
  L2capChannel channel;
  channel.acl_handle = handle;
  channel.local_cid = scid;
  channel.psm = psm_value;
  channels_[{handle, scid}] = channel;
  pending_[{handle, id}] = PendingConnect{psm_value, std::move(callback)};

  ByteWriter payload;
  payload.u16(psm_value).u16(scid);
  send_signaling(handle, kConnectReq, id, payload.data());
}

void L2cap::send(const L2capChannel& channel, BytesView data) {
  ByteWriter w;
  w.u16(channel.remote_cid).raw(data);
  sender_(channel.acl_handle, w.data());
}

void L2cap::echo(hci::ConnectionHandle handle, BytesView payload,
                 std::function<void()> on_response) {
  const std::uint8_t id = next_id_++;
  pending_echo_[{handle, id}] = std::move(on_response);
  send_signaling(handle, kEchoReq, id, payload);
}

void L2cap::send_signaling(hci::ConnectionHandle handle, std::uint8_t code, std::uint8_t id,
                           BytesView payload) {
  ByteWriter w;
  w.u16(kSignalingCid);
  w.u8(code).u8(id).u16(static_cast<std::uint16_t>(payload.size())).raw(payload);
  sender_(handle, w.data());
}

void L2cap::on_acl_data(hci::ConnectionHandle handle, BytesView payload) {
  ByteReader r(payload);
  auto cid = r.u16();
  if (!cid) return;
  if (*cid == kSignalingCid) {
    handle_signaling(handle, r.rest());
    return;
  }
  auto it = channels_.find({handle, *cid});
  if (it == channels_.end()) return;
  auto service = services_.find(it->second.psm);
  if (service != services_.end() && service->second.on_data)
    service->second.on_data(it->second, r.rest());
}

void L2cap::handle_signaling(hci::ConnectionHandle handle, BytesView payload) {
  ByteReader r(payload);
  auto code = r.u8();
  auto id = r.u8();
  auto len = r.u16();
  if (!code || !id || !len) return;
  auto body = r.bytes(*len);
  if (!body) return;
  ByteReader br(*body);

  switch (*code) {
    case kConnectReq: {
      auto psm_value = br.u16();
      auto scid = br.u16();
      if (!psm_value || !scid) return;
      auto service = services_.find(*psm_value);
      std::uint16_t result = kResultSuccess;
      std::uint16_t dcid = 0;
      if (service == services_.end()) {
        result = kResultPsmNotSupported;
      } else if (service->second.requires_authentication &&
                 (!auth_oracle_ || !auth_oracle_(handle))) {
        result = kResultSecurityBlock;
      } else if (service->second.minimum_security == SecurityLevel::kMitmProtected &&
                 (!mitm_oracle_ || !mitm_oracle_(handle))) {
        // Level 3: an unauthenticated (Just Works) key does not qualify.
        result = kResultSecurityBlock;
      } else {
        dcid = allocate_cid();
        L2capChannel channel;
        channel.acl_handle = handle;
        channel.local_cid = dcid;
        channel.remote_cid = *scid;
        channel.psm = *psm_value;
        channels_[{handle, dcid}] = channel;
      }
      ByteWriter response;
      response.u16(dcid).u16(*scid).u16(result);
      send_signaling(handle, kConnectRsp, *id, response.data());
      if (result == kResultSuccess && service->second.on_open)
        service->second.on_open(channels_[{handle, dcid}]);
      break;
    }
    case kConnectRsp: {
      auto dcid = br.u16();
      auto scid = br.u16();
      auto result = br.u16();
      if (!dcid || !scid || !result) return;
      auto pending = pending_.find({handle, *id});
      if (pending == pending_.end()) return;
      auto callback = std::move(pending->second.callback);
      pending_.erase(pending);
      auto chan = channels_.find({handle, *scid});
      if (*result != kResultSuccess || chan == channels_.end()) {
        if (chan != channels_.end()) channels_.erase(chan);
        if (callback) callback(std::nullopt);
        return;
      }
      chan->second.remote_cid = *dcid;
      if (callback) callback(chan->second);
      break;
    }
    case kDisconnectReq: {
      auto dcid = br.u16();
      if (dcid) channels_.erase({handle, *dcid});
      break;
    }
    case kEchoReq:
      send_signaling(handle, kEchoRsp, *id, *body);
      break;
    case kEchoRsp: {
      auto pending = pending_echo_.find({handle, *id});
      if (pending != pending_echo_.end()) {
        auto callback = std::move(pending->second);
        pending_echo_.erase(pending);
        if (callback) callback();
      }
      break;
    }
    default:
      break;
  }
}

void L2cap::on_disconnected(hci::ConnectionHandle handle) {
  std::erase_if(channels_, [handle](const auto& kv) { return kv.first.first == handle; });
  std::erase_if(pending_, [handle](const auto& kv) { return kv.first.first == handle; });
  std::erase_if(pending_echo_, [handle](const auto& kv) { return kv.first.first == handle; });
}

std::size_t L2cap::channel_count(hci::ConnectionHandle handle) const {
  std::size_t count = 0;
  for (const auto& [key, channel] : channels_)
    if (key.first == handle) ++count;
  return count;
}

void L2cap::save_state(state::StateWriter& w) const {
  w.u64(channels_.size());
  for (const auto& [key, channel] : channels_) {
    w.u16(channel.acl_handle);
    w.u16(channel.local_cid);
    w.u16(channel.remote_cid);
    w.u16(channel.psm);
  }
  w.u16(next_cid_);
  w.u8(next_id_);
}

void L2cap::load_state(state::StateReader& r, state::RestoreMode mode) {
  channels_.clear();
  const std::uint64_t channel_count = r.u64();
  for (std::uint64_t i = 0; i < channel_count && r.ok(); ++i) {
    L2capChannel channel;
    channel.acl_handle = r.u16();
    channel.local_cid = r.u16();
    channel.remote_cid = r.u16();
    channel.psm = r.u16();
    channels_.emplace(std::make_pair(channel.acl_handle, channel.local_cid), channel);
  }
  next_cid_ = r.u16();
  next_id_ = r.u8();
  if (mode == state::RestoreMode::kRewind) {
    pending_.clear();
    pending_echo_.clear();
  }
}

}  // namespace blap::host
