#include "host/map.hpp"

namespace blap::host {

namespace {
constexpr std::uint8_t kListRequest = 0x20;
constexpr std::uint8_t kListResponse = 0x21;
constexpr std::uint8_t kGetRequest = 0x22;
constexpr std::uint8_t kGetResponse = 0x23;
}  // namespace

bool MapProfile::handle_server(L2cap& l2cap, const L2capChannel& channel, BytesView data) {
  ByteReader r(data);
  auto code = r.u8();
  if (!code) return false;
  if (*code == kListRequest) {
    ++serves_;
    ByteWriter w;
    w.u8(kListResponse);
    w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(messages_.size(), 255)));
    std::size_t emitted = 0;
    for (const auto& [handle, body] : messages_) {
      if (emitted++ == 255) break;
      w.u16(handle);
    }
    l2cap.send(channel, w.data());
    return true;
  }
  if (*code == kGetRequest) {
    auto handle = r.u16();
    if (!handle) return true;
    ++serves_;
    ByteWriter w;
    w.u8(kGetResponse).u16(*handle);
    auto it = messages_.find(*handle);
    if (it == messages_.end()) {
      w.u8(0).u16(0);
    } else {
      const std::string& body = it->second;
      const std::size_t n = std::min<std::size_t>(body.size(), 0xFFFF);
      w.u8(1).u16(static_cast<std::uint16_t>(n));
      w.raw(BytesView(reinterpret_cast<const std::uint8_t*>(body.data()), n));
    }
    l2cap.send(channel, w.data());
    return true;
  }
  return false;
}

void MapProfile::request_list(L2cap& l2cap, const L2capChannel& channel) {
  ByteWriter w;
  w.u8(kListRequest);
  l2cap.send(channel, w.data());
}

void MapProfile::request_message(L2cap& l2cap, const L2capChannel& channel,
                                 std::uint16_t handle) {
  ByteWriter w;
  w.u8(kGetRequest).u16(handle);
  l2cap.send(channel, w.data());
}

void MapProfile::on_client_data(BytesView data) {
  ByteReader r(data);
  auto code = r.u8();
  if (!code) return;
  if (*code == kListResponse) {
    auto count = r.u8();
    if (!count) return;
    std::vector<std::uint16_t> handles;
    for (std::uint8_t i = 0; i < *count; ++i) {
      auto handle = r.u16();
      if (!handle) break;
      handles.push_back(*handle);
    }
    if (list_callback_) {
      auto cb = std::move(list_callback_);
      list_callback_ = nullptr;
      cb(std::move(handles));
    }
    return;
  }
  if (*code == kGetResponse) {
    auto handle = r.u16();
    auto found = r.u8();
    auto len = r.u16();
    if (!handle || !found || !len) return;
    std::optional<std::string> body;
    if (*found) {
      auto bytes = r.bytes(*len);
      if (bytes) body = std::string(bytes->begin(), bytes->end());
    }
    if (get_callback_) {
      auto cb = std::move(get_callback_);
      get_callback_ = nullptr;
      cb(std::move(body));
    }
  }
}

}  // namespace blap::host
