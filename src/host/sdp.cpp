#include "host/sdp.hpp"

namespace blap::host {

namespace {
constexpr std::uint8_t kSearchRequest = 0x02;
constexpr std::uint8_t kSearchResponse = 0x03;
}  // namespace

void SdpServer::attach(L2cap& l2cap) {
  l2cap_ = &l2cap;
  L2cap::Service service;
  service.requires_authentication = false;  // SDP is open by design
  service.on_data = [this, &l2cap](const L2capChannel& channel, BytesView data) {
    handle(l2cap, channel, data);
  };
  l2cap.register_service(psm::kSdp, std::move(service));
}

bool SdpServer::handle(L2cap& l2cap, const L2capChannel& channel, BytesView data) {
  ByteReader r(data);
  auto code = r.u8();
  if (!code || *code != kSearchRequest) return false;
  auto uuid16 = r.u16();
  if (!uuid16) return true;  // malformed request: consumed, ignored
  const bool found = std::find(services_.begin(), services_.end(), *uuid16) != services_.end();
  ByteWriter w;
  w.u8(kSearchResponse);
  w.u8(found ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(services_.size()));
  for (std::uint16_t s : services_) w.u16(s);
  l2cap.send(channel, w.data());
  return true;
}

void SdpClient::search(hci::ConnectionHandle handle, std::uint16_t uuid16, Callback callback) {
  pending_ = std::move(callback);
  l2cap_.connect_channel(handle, psm::kSdp,
                         [this, uuid16](std::optional<L2capChannel> channel) {
                           if (!channel) {
                             if (pending_) {
                               auto cb = std::move(pending_);
                               pending_ = nullptr;
                               cb(std::nullopt);
                             }
                             return;
                           }
                           ByteWriter w;
                           w.u8(kSearchRequest).u16(uuid16);
                           l2cap_.send(*channel, w.data());
                         });
}

void SdpClient::on_response(BytesView payload) {
  ByteReader r(payload);
  auto code = r.u8();
  auto found = r.u8();
  auto count = r.u8();
  if (!code || *code != kSearchResponse || !found || !count) return;
  Result result;
  result.found = *found != 0;
  for (std::uint8_t i = 0; i < *count; ++i) {
    auto uuid16 = r.u16();
    if (!uuid16) break;
    result.all_services.push_back(*uuid16);
  }
  if (pending_) {
    auto cb = std::move(pending_);
    pending_ = nullptr;
    cb(result);
  }
}

}  // namespace blap::host
