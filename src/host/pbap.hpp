// pbap.hpp — Phone Book Access Profile (simplified) over L2CAP.
//
// PBAP is the paper's headline exfiltration target: the §III system model
// makes M "a device with sensitive data which can be shared via Bluetooth
// profile services such as Phone Book Access Profile", and §IV promises that
// a stolen link key leaks "phone books, messages, and phone call
// conversations". BLAP models PBAP as an authenticated L2CAP service that
// serves the host's configured phone book.
//
// Simplification: real PBAP runs OBEX over RFCOMM; BLAP serves the same
// request/response content directly over an L2CAP channel (PSM 0x1003). The
// security property under study — the profile is gated on link
// authentication, so possession of the link key IS access to the data — is
// identical.
//
// Channel messages:
//   request : 0x10 (pull phone book)
//   response: 0x11 | count u8 | count x (len u8 | utf8 vCard-ish entry)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "host/l2cap.hpp"

namespace blap::host {

namespace psm_ext {
inline constexpr std::uint16_t kPbap = 0x1003;
}

class PbapProfile {
 public:
  using PullCallback = std::function<void(std::optional<std::vector<std::string>>)>;

  /// Server side: entries served to authenticated peers.
  void set_phonebook(std::vector<std::string> entries) { phonebook_ = std::move(entries); }
  [[nodiscard]] const std::vector<std::string>& phonebook() const { return phonebook_; }
  [[nodiscard]] int serves() const { return serves_; }

  /// Handle an inbound PBAP message if it is a request; false otherwise.
  bool handle_server(L2cap& l2cap, const L2capChannel& channel, BytesView data);

  /// Client side: send the pull request on an opened channel.
  void pull(L2cap& l2cap, const L2capChannel& channel);

  /// Feed data arriving on a PBAP channel we initiated.
  void on_client_data(BytesView data);

  void set_client_callback(PullCallback callback) { client_callback_ = std::move(callback); }

  /// Snapshot support (callback handling as in PanProfile).
  [[nodiscard]] bool quiescent() const { return !client_callback_; }
  void reset_pending() { client_callback_ = nullptr; }
  void save_state(state::StateWriter& w) const {
    w.u64(phonebook_.size());
    for (const std::string& entry : phonebook_) w.str(entry);
    w.u32(static_cast<std::uint32_t>(serves_));
  }
  void load_state(state::StateReader& r) {
    phonebook_.clear();
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) phonebook_.push_back(r.str());
    serves_ = static_cast<int>(r.u32());
  }

 private:
  std::vector<std::string> phonebook_;
  PullCallback client_callback_;
  int serves_ = 0;
};

}  // namespace blap::host
