// host.hpp — the bluedroid-shaped Bluetooth host stack.
//
// The host is where both BLAP attacks live, because the host is what a
// phone's user (or an attacker with user-level access) can modify — unlike
// the controller firmware BIAS/KNOB had to reflash. The two hook points
// mirror the paper's patches:
//
//   * AttackHooks::ignore_link_key_request — Fig. 9's commented-out
//     btu_hcif_link_key_request_evt(): the host silently drops the
//     controller's key request, so the peer's LMP challenge times out and
//     the link drops WITHOUT an authentication failure.
//
//   * AttackHooks::ploc_delay — Fig. 13's usleep before
//     btu_hcif_connection_comp_evt(): processing of HCI events stalls from
//     the Connection_Complete onward, leaving a Physical-Layer-Only
//     Connection (PLOC) the victim's host mistakes for a host-level link.
//
// GAP behaviour reproduced from real stacks, including the one the page
// blocking attack exploits: pair() *reuses an existing ACL connection* to
// the target address instead of re-paging — so a victim holding a PLOC to a
// spoofed attacker sends its pairing request straight down the attacker's
// link (paper §V-B, Fig. 6b).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "common/scheduler.hpp"
#include "hci/commands.hpp"
#include "obs/obs.hpp"
#include "hci/events.hpp"
#include "hci/snoop.hpp"
#include "host/hfp.hpp"
#include "host/l2cap.hpp"
#include "host/map.hpp"
#include "host/pan.hpp"
#include "host/pbap.hpp"
#include "host/sdp.hpp"
#include "host/security_manager.hpp"
#include "host/ui_model.hpp"
#include "transport/transport.hpp"

namespace blap::host {

struct HostConfig {
  std::string device_name = "blap-host";
  BtVersion version = BtVersion::kV5_0;
  hci::IoCapability io_capability = hci::IoCapability::kDisplayYesNo;
  std::uint8_t auth_requirements = 0x03;  // MITM protection + dedicated bonding
  bool auto_accept_connections = true;
  /// Idle ACL links with no L2CAP channels are dropped after this long —
  /// the host policy that forces the PLOC keep-alive question.
  SimTime acl_idle_timeout = 15 * kSecond;
  /// Whether this platform exposes an HCI dump facility at all (Android and
  /// BlueZ: yes; Windows host stacks: no — USB sniffing is needed there).
  bool hci_dump_available = true;
  /// §VII-B mitigation: abort a pairing when we are the pairing initiator but
  /// were the *connection responder* and the connection initiator declares
  /// NoInputNoOutput — the page blocking signature.
  bool detect_page_blocking = false;
  /// PIN supplied during legacy (pre-SSP) pairing when no UserAgent
  /// overrides it. Real users overwhelmingly chose short numeric PINs —
  /// the weakness SSP was designed to retire (paper §II-C1).
  std::string pin_code = "0000";
  /// Secure Simple Pairing support. false models a pre-2.1 stack: pairing
  /// falls back to the legacy PIN procedure (either side lacking SSP
  /// downgrades the pair of them).
  bool simple_pairing = true;
  /// Fault-recovery master switch (set by Simulation::set_fault_plan). While
  /// off — the default — the host schedules no watchdog events and never
  /// retries, so a fault-free run is byte-identical to a pre-fault-layer one.
  bool fault_recovery = false;
  /// Watchdog over an in-flight pair/profile operation: if it neither
  /// completes nor fails within this window the host fails it with
  /// Connection Timeout and drops the wedged ACL, instead of hanging forever
  /// on an HCI exchange whose reply was lost.
  SimTime pair_op_watchdog = 90 * kSecond;
};

/// Host-stack manipulation points used by the attacks (paper Figs. 9 & 13).
struct AttackHooks {
  bool ignore_link_key_request = false;
  SimTime ploc_delay = 0;
  /// Wedged-host model: neither accept nor reject inbound connection
  /// requests, leaving the half-open baseband link to the controller's
  /// connection-accept timer. Exercises the timeout/recovery path.
  bool ignore_connection_request = false;
};

/// Simulated human in front of the device. The default accepts every popup —
/// the paper's §V-B2 argument for why a page-blocked victim confirms: the
/// user *did* initiate a pairing, the popup is timely, and it carries no
/// value that could expose the spoof.
class UserAgent {
 public:
  virtual ~UserAgent() = default;
  /// `numeric_value` is set only when the popup displays a comparison value.
  virtual bool on_pairing_popup(const BdAddr& peer, std::optional<std::uint32_t> numeric_value) {
    (void)peer;
    (void)numeric_value;
    return true;
  }

  /// Legacy pairing PIN prompt. Return std::nullopt to use the host's
  /// configured pin_code; an empty string refuses the pairing.
  virtual std::optional<std::string> on_pin_request(const BdAddr& peer) {
    (void)peer;
    return std::nullopt;
  }
};

struct PopupRecord {
  BdAddr peer;
  bool shown_to_user = false;
  std::optional<std::uint32_t> numeric_value;
  bool accepted = false;
  SimTime at = 0;
};

class HostStack {
 public:
  using StatusCallback = std::function<void(hci::Status)>;
  using BoolCallback = std::function<void(bool)>;

  struct Discovered {
    BdAddr address;
    ClassOfDevice class_of_device;
    std::string name;           // from the EIR complete-local-name, if any
    std::int8_t rssi = 0;       // 0 when the basic (pre-EIR) event arrived
  };

  struct AclInfo {
    hci::ConnectionHandle handle = hci::kInvalidHandle;
    BdAddr peer;
    bool initiator = false;
    bool authenticated = false;
    bool encrypted = false;
    /// The link survived but an operation over it failed or hung (fault
    /// recovery kicked in). Callers can treat it as best-effort.
    bool degraded = false;
  };

  HostStack(Scheduler& scheduler, transport::HciTransport& transport, HostConfig config);

  /// Initialize the controller: Reset, Read_BD_ADDR, scan enable, local
  /// name, COD, Simple Pairing mode. Run the scheduler afterwards.
  void power_on();

  // --- GAP operations -------------------------------------------------------

  /// Inquiry for `inquiry_length` x 1.28 s; callback gets all responders.
  void discover(std::uint8_t inquiry_length,
                std::function<void(std::vector<Discovered>)> callback);

  /// Change discoverability/connectability. kPageOnly hides the device from
  /// inquiry; kNone makes it non-connectable — the §II-B defense that
  /// disables the page procedure entirely (and with it, page blocking).
  void set_scan_mode(hci::ScanEnable mode);

  /// SDP query: does the peer advertise `uuid16`? Opens an SDP channel over
  /// the existing or a fresh ACL. Callback gets nullopt on failure.
  void discover_services(const BdAddr& peer, std::uint16_t uuid16,
                         std::function<void(std::optional<SdpClient::Result>)> callback);

  /// Ask the peer for its user-friendly name (LMP name request).
  void request_remote_name(const BdAddr& peer,
                           std::function<void(std::optional<std::string>)> callback);

  /// Pair / authenticate with a peer. Reuses an existing ACL if present
  /// (the page blocking attack's entry point); otherwise pages first. On
  /// success the link is authenticated AND encrypted.
  void pair(const BdAddr& peer, StatusCallback callback);

  /// Establish an ACL connection WITHOUT pairing — the attacker's first
  /// page blocking step (connection initiator, never pairing initiator).
  void connect_only(const BdAddr& peer, StatusCallback callback);

  /// Open a PAN (tethering) connection: ensures authentication, then
  /// L2CAP/BNEP setup. The paper's link-key validation probe.
  void connect_pan(const BdAddr& peer, BoolCallback callback);

  /// Pull the peer's phone book over PBAP: ensures authentication, then
  /// opens the PBAP channel and requests the entries. This is the "mine
  /// sensitive information" end state of the paper's attack model (§III-B).
  void pull_phonebook(const BdAddr& peer, PbapProfile::PullCallback callback);

  /// Read every message from the peer's MAP store: ensures authentication,
  /// lists the handles, then fetches each body. Callback gets nullopt on
  /// failure. The last of the paper's three §III "sensitive data" services.
  void read_messages(const BdAddr& peer,
                     std::function<void(std::optional<std::vector<std::string>>)> callback);

  /// Open an HFP control/audio channel to the peer (ensures authentication).
  /// Afterwards hfp_send_at()/hfp_send_audio() operate on the open channel.
  void connect_hfp(const BdAddr& peer, BoolCallback callback);
  void hfp_send_at(const BdAddr& peer, const std::string& command);
  void hfp_send_audio(const BdAddr& peer, BytesView samples);
  [[nodiscard]] bool hfp_channel_open(const BdAddr& peer) const {
    return hfp_channels_.contains(peer);
  }

  /// Send an L2CAP echo (PLOC keep-alive dummy data).
  void send_echo(const BdAddr& peer, std::function<void()> on_response);

  void disconnect(const BdAddr& peer,
                  hci::Status reason = hci::Status::kRemoteUserTerminatedConnection);

  // --- state ---------------------------------------------------------------

  [[nodiscard]] bool has_acl(const BdAddr& peer) const;
  [[nodiscard]] std::vector<AclInfo> acls() const;
  [[nodiscard]] const BdAddr& address() const { return own_address_; }
  [[nodiscard]] const HostConfig& config() const { return config_; }
  [[nodiscard]] HostConfig& config() { return config_; }

  [[nodiscard]] SecurityManager& security() { return security_; }
  [[nodiscard]] const SecurityManager& security() const { return security_; }
  /// Replace the bond database wholesale — installing fake bonding info is
  /// exactly editing bt_config.conf (paper Fig. 10).
  void install_security(SecurityManager manager) { security_ = std::move(manager); }

  [[nodiscard]] AttackHooks& hooks() { return hooks_; }

  /// HCI dump control (Android's 'Bluetooth HCI snoop log' toggle).
  void enable_snoop(bool enabled);
  [[nodiscard]] bool snoop_enabled() const { return snoop_enabled_; }
  [[nodiscard]] hci::SnoopLog& snoop() { return snoop_; }
  [[nodiscard]] const hci::SnoopLog& snoop() const { return snoop_; }

  /// Attach (or clear, with nullptr) the simulation's observer. The host
  /// records HCI dispatch counts, link-key request handling (including the
  /// Fig. 9 stall), bond stores, PLOC windows and pair-operation spans.
  void set_observer(obs::Observer* observer) {
    obs_ = observer;
    obs_tid_ = observer != nullptr ? observer->device_tid(config_.device_name) : 0;
  }

  void set_user_agent(UserAgent* agent) { user_agent_ = agent; }
  [[nodiscard]] const std::vector<PopupRecord>& popup_history() const { return popups_; }

  [[nodiscard]] int ignored_link_key_requests() const { return ignored_link_key_requests_; }
  [[nodiscard]] const PanProfile& pan() const { return pan_; }
  [[nodiscard]] PbapProfile& pbap() { return pbap_; }
  [[nodiscard]] const PbapProfile& pbap() const { return pbap_; }
  [[nodiscard]] HfpProfile& hfp() { return hfp_; }
  [[nodiscard]] const HfpProfile& hfp() const { return hfp_; }
  [[nodiscard]] MapProfile& map() { return map_; }
  [[nodiscard]] const MapProfile& map() const { return map_; }
  [[nodiscard]] L2cap& l2cap() { return l2cap_; }

  /// Pairing events observed (peer, success) — test/bench instrumentation.
  [[nodiscard]] const std::vector<std::pair<BdAddr, bool>>& pairing_events() const {
    return pairing_events_;
  }

  /// Snapshot support (see src/snapshot/). quiescent() is the strict-capture
  /// precondition: no in-flight GAP/profile operation holds a completion
  /// callback and no PLOC stall is replaying queued packets. save_state
  /// covers every serializable member; kRewind restores additionally clear
  /// the non-serializable residue (operation callbacks, a non-default user
  /// agent) so a forked trial starts from exactly the captured state.
  [[nodiscard]] bool quiescent() const;
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r, state::RestoreMode mode);

 private:
  enum class OpStage : std::uint8_t { kConnecting, kAuthenticating, kEncrypting, kChannel };

  enum class ProfileTarget : std::uint8_t { kNone, kPan, kPbap, kHfp, kMap };

  struct PairOp {
    BdAddr peer;
    OpStage stage = OpStage::kConnecting;
    std::uint64_t obs_span = 0;
    StatusCallback callback;
    ProfileTarget profile = ProfileTarget::kNone;
    BoolCallback pan_callback;
    PbapProfile::PullCallback pbap_callback;
    BoolCallback hfp_callback;
    std::function<void(std::optional<std::vector<std::string>>)> map_callback;
    EventHandle watchdog;  // armed only when fault_recovery is on
  };

  struct Acl {
    hci::ConnectionHandle handle = hci::kInvalidHandle;
    BdAddr peer;
    bool initiator = false;
    bool authenticated = false;
    bool encrypted = false;
    hci::IoCapability peer_io = hci::IoCapability::kDisplayYesNo;
    bool is_pairing_initiator = false;  // we sent Authentication_Requested
    bool degraded = false;              // see AclInfo::degraded
    SimTime last_activity = 0;
    EventHandle idle_timer;
  };

  // HCI plumbing.
  void send_command(const hci::HciPacket& packet);
  void on_packet(const hci::HciPacket& packet);
  void process_packet(const hci::HciPacket& packet);
  void dispatch_event(std::uint8_t code, BytesView params);

  // btu_hcif-style event handlers.
  void on_connection_request(const hci::ConnectionRequestEvt& evt);
  void on_connection_complete(const hci::ConnectionCompleteEvt& evt);
  void on_disconnection_complete(const hci::DisconnectionCompleteEvt& evt);
  void on_link_key_request(const hci::LinkKeyRequestEvt& evt);
  void on_pin_code_request(const hci::PinCodeRequestEvt& evt);
  void on_link_key_notification(const hci::LinkKeyNotificationEvt& evt);
  void on_io_capability_request(const hci::IoCapabilityRequestEvt& evt);
  void on_io_capability_response(const hci::IoCapabilityResponseEvt& evt);
  void on_user_confirmation_request(const hci::UserConfirmationRequestEvt& evt);
  void on_simple_pairing_complete(const hci::SimplePairingCompleteEvt& evt);
  void on_authentication_complete(const hci::AuthenticationCompleteEvt& evt);
  void on_encryption_change(const hci::EncryptionChangeEvt& evt);
  void on_inquiry_result(const hci::InquiryResultEvt& evt);
  void on_extended_inquiry_result(const hci::ExtendedInquiryResultEvt& evt);
  void on_inquiry_complete();
  void on_remote_name_complete(const hci::RemoteNameRequestCompleteEvt& evt);
  void on_command_complete(const hci::CommandCompleteEvt& evt);

  // GAP helpers.
  void continue_pair_after_connect(Acl& acl);
  void finish_pair_op(const BdAddr& peer, hci::Status status);
  void start_profile_channel(const BdAddr& peer);
  void touch(Acl& acl);
  void arm_idle_timer(Acl& acl);

  // Fault-recovery helpers. While config_.fault_recovery is off the watchdog
  // is never armed and no retry is ever scheduled.
  void adopt_pair_op(PairOp op);
  void arm_pair_watchdog();
  void retry_pair_op(PairOp op);
  void dispatch_pair_result(PairOp op, hci::Status status);
  void mark_degraded(const BdAddr& peer, const char* why);

  Acl* acl_by_peer(const BdAddr& peer);
  Acl* acl_by_handle(hci::ConnectionHandle handle);

  Scheduler& scheduler_;
  transport::HciTransport& transport_;
  HostConfig config_;
  BdAddr own_address_;
  obs::Observer* obs_ = nullptr;
  std::uint32_t obs_tid_ = 0;
  std::uint64_t obs_ploc_span_ = 0;

  SecurityManager security_;
  AttackHooks hooks_;
  L2cap l2cap_;
  SdpServer sdp_server_;
  SdpClient sdp_client_;
  PanProfile pan_;
  PbapProfile pbap_;
  HfpProfile hfp_;
  MapProfile map_;
  std::map<BdAddr, L2capChannel> hfp_channels_;
  // In-flight MAP exfiltration state (client role).
  struct MapReadState {
    L2capChannel channel;
    std::vector<std::uint16_t> handles;
    std::size_t next_index = 0;
    std::vector<std::string> bodies;
  };
  std::optional<MapReadState> map_read_;
  void continue_map_read(const BdAddr& peer);
  UserAgent default_user_;
  UserAgent* user_agent_ = &default_user_;

  // Ordered map: iteration order (acls(), has_acl scans) is part of the
  // determinism contract — it must not depend on hash-table layout.
  std::map<hci::ConnectionHandle, Acl> acls_;
  /// Peers whose Connection_Request this host answered with Accept and whose
  /// Connection_Complete is still outstanding. A successful
  /// Connection_Complete with no pending accept and no pending outgoing op
  /// is unsolicited (a controller bug or injected traffic) and is ignored —
  /// it must not fabricate host ACL state for a link that does not exist.
  /// Transient by construction (in-flight HCI exchange), so never captured
  /// in a strict snapshot and not serialized; cleared on kRewind restore.
  std::set<BdAddr> pending_accepts_;
  std::optional<PairOp> pair_op_;
  std::optional<std::pair<BdAddr, StatusCallback>> connect_op_;
  std::optional<std::function<void(std::vector<Discovered>)>> discovery_callback_;
  std::optional<std::pair<BdAddr, std::function<void(std::optional<std::string>)>>>
      name_request_;
  int detected_page_blocking_count_ = 0;

 public:
  [[nodiscard]] int detected_page_blocking_count() const { return detected_page_blocking_count_; }

 private:
  std::vector<Discovered> discovery_results_;

  // PLOC machinery: while active, inbound HCI packets queue here.
  bool ploc_active_ = false;
  std::deque<hci::HciPacket> ploc_queue_;

  // HCI dump.
  bool snoop_enabled_ = false;
  hci::SnoopLog snoop_;

  // Instrumentation.
  int ignored_link_key_requests_ = 0;
  std::vector<PopupRecord> popups_;
  std::vector<std::pair<BdAddr, bool>> pairing_events_;
};

}  // namespace blap::host
