#include "host/security_manager.hpp"

#include <sstream>

namespace blap::host {

void SecurityManager::store_bond(BondRecord record) {
  bonds_[record.address] = std::move(record);
}

std::optional<crypto::LinkKey> SecurityManager::link_key_for(const BdAddr& address) const {
  auto it = bonds_.find(address);
  if (it == bonds_.end()) return std::nullopt;
  return it->second.link_key;
}

const BondRecord* SecurityManager::bond_for(const BdAddr& address) const {
  auto it = bonds_.find(address);
  return it == bonds_.end() ? nullptr : &it->second;
}

bool SecurityManager::is_bonded(const BdAddr& address) const { return bonds_.contains(address); }

void SecurityManager::remove_bond(const BdAddr& address) { bonds_.erase(address); }

std::vector<BondRecord> SecurityManager::bonds() const {
  std::vector<BondRecord> out;
  out.reserve(bonds_.size());
  for (const auto& [addr, record] : bonds_) out.push_back(record);
  return out;
}

bool SecurityManager::on_authentication_result(const BdAddr& address, hci::Status status) {
  // Real stacks purge the bond on a *cryptographic* failure; timeouts and
  // disconnects leave it alone (the peer may simply have gone away).
  if (status == hci::Status::kAuthenticationFailure ||
      status == hci::Status::kPinOrKeyMissing) {
    if (bonds_.erase(address) > 0) return true;
  }
  return false;
}

bool SecurityManager::is_transient_failure(hci::Status status) {
  // The timeout family: the channel (or the peer's channel) failed us, not
  // the cryptography. Everything else is treated as permanent.
  return status == hci::Status::kPageTimeout ||
         status == hci::Status::kConnectionTimeout ||
         status == hci::Status::kConnectionAcceptTimeout ||
         status == hci::Status::kLmpResponseTimeout;
}

std::optional<SimTime> SecurityManager::note_pairing_failure(const BdAddr& address,
                                                             hci::Status status) {
  if (!is_transient_failure(status)) {
    failed_attempts_.erase(address);
    return std::nullopt;
  }
  unsigned& attempts = failed_attempts_[address];
  ++attempts;
  if (attempts >= retry_policy_.max_attempts) {
    // Budget spent: surface the error and reset, so a later user-initiated
    // operation gets a fresh budget instead of failing instantly forever.
    failed_attempts_.erase(address);
    return std::nullopt;
  }
  // Exponential backoff: 1x, 2x, 4x ... of the initial backoff.
  return retry_policy_.initial_backoff << (attempts - 1);
}

void SecurityManager::note_pairing_success(const BdAddr& address) {
  failed_attempts_.erase(address);
}

unsigned SecurityManager::pairing_attempts(const BdAddr& address) const {
  auto it = failed_attempts_.find(address);
  return it == failed_attempts_.end() ? 0 : it->second;
}

std::string SecurityManager::to_bt_config() const {
  // Sequential append (rather than operator+ chains) sidesteps GCC 12's
  // -Wrestrict false positive on temporary-string concatenation (PR 105329).
  std::string out;
  for (const auto& [addr, record] : bonds_) {
    out.append("[").append(addr.to_string()).append("]\n");
    out.append("Name = ").append(record.name).append("\n");
    if (!record.services.empty()) {
      out.append("Service =");
      for (const auto& service : record.services) {
        out.append(" ").append(service.to_string());
      }
      out.append("\n");
    }
    // blap-taint: declassified — bt_config.conf bond export: the attack surface
    // the paper's extraction pipeline scrapes (Sec. 4); keys here are the point
    out.append("LinkKey = ").append(hex(record.link_key)).append("\n");
    out.append("LinkKeyType = ")
        .append(std::to_string(static_cast<unsigned>(record.key_type)))
        .append("\n\n");
  }
  return out;
}

SecurityManager SecurityManager::from_bt_config(const std::string& text) {
  SecurityManager manager;
  std::istringstream in(text);
  std::string line;
  BondRecord current;
  bool in_section = false;
  bool current_has_key = false;

  auto flush = [&] {
    if (in_section && current_has_key) manager.store_bond(std::move(current));
    current = BondRecord{};
    in_section = false;
    current_has_key = false;
  };

  auto trim = [](std::string s) {
    const auto begin = s.find_first_not_of(" \t\r\n");
    const auto end = s.find_last_not_of(" \t\r\n");
    if (begin == std::string::npos) return std::string();
    return s.substr(begin, end - begin + 1);
  };

  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (line.front() == '[' && line.back() == ']') {
      flush();
      auto addr = BdAddr::parse(line.substr(1, line.size() - 2));
      if (addr) {
        in_section = true;
        current.address = *addr;
      }
      continue;
    }
    if (!in_section) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "Name") {
      current.name = value;
    } else if (key == "Service") {
      std::istringstream services(value);
      std::string token;
      while (services >> token) {
        if (auto uuid = Uuid::parse(token)) current.services.push_back(*uuid);
      }
    } else if (key == "LinkKey") {
      if (auto parsed = crypto::link_key_from_hex(value)) {
        current.link_key = *parsed;
        current_has_key = true;
      }
    } else if (key == "LinkKeyType") {
      current.key_type = static_cast<crypto::LinkKeyType>(std::stoi(value));
    }
  }
  flush();
  return manager;
}

void SecurityManager::save_state(state::StateWriter& w) const {
  w.u64(bonds_.size());
  for (const auto& [address, bond] : bonds_) {
    w.fixed(address.bytes());
    w.str(bond.name);
    // blap-taint: declassified — snapshot key section (bond store)
    w.fixed(bond.link_key);
    w.u8(static_cast<std::uint8_t>(bond.key_type));
    w.u64(bond.services.size());
    for (const Uuid& service : bond.services) w.fixed(service.bytes());
  }
  w.u64(failed_attempts_.size());
  for (const auto& [address, attempts] : failed_attempts_) {
    w.fixed(address.bytes());
    w.u32(attempts);
  }
  w.u32(retry_policy_.max_attempts);
  w.u64(retry_policy_.initial_backoff);
}

void SecurityManager::load_state(state::StateReader& r) {
  bonds_.clear();
  const std::uint64_t bond_count = r.u64();
  for (std::uint64_t i = 0; i < bond_count && r.ok(); ++i) {
    BondRecord bond;
    bond.address = BdAddr(r.fixed<BdAddr::kSize>());
    bond.name = r.str();
    bond.link_key = r.fixed<std::tuple_size_v<crypto::LinkKey>>();
    bond.key_type = static_cast<crypto::LinkKeyType>(r.u8());
    const std::uint64_t service_count = r.u64();
    for (std::uint64_t s = 0; s < service_count && r.ok(); ++s)
      bond.services.push_back(Uuid(r.fixed<Uuid::kSize>()));
    bonds_.emplace(bond.address, std::move(bond));
  }
  failed_attempts_.clear();
  const std::uint64_t failure_count = r.u64();
  for (std::uint64_t i = 0; i < failure_count && r.ok(); ++i) {
    const BdAddr address(r.fixed<BdAddr::kSize>());
    failed_attempts_[address] = r.u32();
  }
  retry_policy_.max_attempts = r.u32();
  retry_policy_.initial_backoff = r.u64();
}

}  // namespace blap::host
