// sdp.hpp — minimal Service Discovery Protocol over L2CAP PSM 0x0001.
//
// Two BLAP-relevant properties of SDP:
//   * it requires no authentication (GAP lets unauthenticated peers query
//     it), which is why the paper's mitigation discussion notes a connection
//     initiator may legitimately never pair; and
//   * an SDP query makes convenient PLOC keep-alive "dummy data" (§VI-B2).
//
// Message format on the channel:
//   request : 0x02 | uuid16 (LE)
//   response: 0x03 | found u8 | count u8 | count x uuid16 (LE)
#pragma once

#include <functional>
#include <vector>

#include "common/uuid.hpp"
#include "host/l2cap.hpp"

namespace blap::host {

class SdpServer {
 public:
  /// Register the server's service records and hook it onto L2CAP.
  void attach(L2cap& l2cap);

  /// Handle an inbound SDP message if it is a request. Returns false when
  /// the message is not a request (e.g. a response destined for the client
  /// role sharing the PSM).
  bool handle(L2cap& l2cap, const L2capChannel& channel, BytesView data);

  void add_service(std::uint16_t uuid16) { services_.push_back(uuid16); }
  void clear_services() { services_.clear(); }
  [[nodiscard]] const std::vector<std::uint16_t>& services() const { return services_; }

  /// Snapshot support: the registered service records.
  void save_state(state::StateWriter& w) const {
    w.u64(services_.size());
    for (const std::uint16_t uuid16 : services_) w.u16(uuid16);
  }
  void load_state(state::StateReader& r) {
    services_.clear();
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) services_.push_back(r.u16());
  }

 private:
  std::vector<std::uint16_t> services_;
  L2cap* l2cap_ = nullptr;
};

class SdpClient {
 public:
  struct Result {
    bool found = false;
    std::vector<std::uint16_t> all_services;
  };
  using Callback = std::function<void(std::optional<Result>)>;

  explicit SdpClient(L2cap& l2cap) : l2cap_(l2cap) {}

  /// Search the peer on `handle` for a service UUID.
  void search(hci::ConnectionHandle handle, std::uint16_t uuid16, Callback callback);

  /// Feed a response arriving on an SDP channel we initiated.
  void on_response(BytesView payload);

  /// No outstanding search (strict-snapshot precondition); kRewind restores
  /// drop a search started after the capture.
  [[nodiscard]] bool quiescent() const { return !pending_; }
  void reset_pending() { pending_ = nullptr; }

 private:
  L2cap& l2cap_;
  Callback pending_;
};

}  // namespace blap::host
