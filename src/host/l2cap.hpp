// l2cap.hpp — minimal L2CAP: channel establishment over ACL links.
//
// Just enough of L2CAP for the profiles BLAP's scenarios exercise (SDP and
// PAN/BNEP) plus the echo request — the "dummy data" keep-alive the paper
// suggests for holding a PLOC link open past the host's idle timeout.
//
// Framing: every ACL payload is [CID u16 LE][data]. CID 0x0001 is the
// signaling channel carrying [code u8][id u8][len u16][payload] commands;
// dynamically allocated CIDs (0x0040+) carry raw service data.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "common/bytes.hpp"
#include "common/state_io.hpp"
#include "hci/constants.hpp"

namespace blap::host {

namespace psm {
inline constexpr std::uint16_t kSdp = 0x0001;
inline constexpr std::uint16_t kBnep = 0x000F;  // PAN profile transport
}  // namespace psm

struct L2capChannel {
  hci::ConnectionHandle acl_handle = hci::kInvalidHandle;
  std::uint16_t local_cid = 0;
  std::uint16_t remote_cid = 0;
  std::uint16_t psm = 0;
};

class L2cap {
 public:
  /// Sends an assembled ACL payload (CID + data) toward the controller.
  using AclSender = std::function<void(hci::ConnectionHandle, BytesView)>;
  /// GAP Security Mode 4 service levels (Vol 3, Part C §5.2.2): what the
  /// link must provide before a channel on this PSM may open.
  enum class SecurityLevel : std::uint8_t {
    kNone = 0,           // level 1: SDP and the like
    kAuthenticated = 2,  // level 2: any link key (Just Works suffices)
    kMitmProtected = 3,  // level 3: authenticated (MITM-protected) key only
  };

  /// Service callbacks: channel opened (by a remote peer), data received.
  struct Service {
    std::function<void(const L2capChannel&)> on_open;
    std::function<void(const L2capChannel&, BytesView)> on_data;
    /// Services like PAN require the link to be authenticated before a
    /// channel may open; the host enforces this via the gate callback.
    bool requires_authentication = false;
    /// Level-3 services additionally demand a MITM-protected key — the
    /// policy that would blunt the Just Works downgrade if deployed.
    SecurityLevel minimum_security = SecurityLevel::kNone;
  };
  using ConnectCallback = std::function<void(std::optional<L2capChannel>)>;

  explicit L2cap(AclSender sender) : sender_(std::move(sender)) {}

  /// Register the local service listening on a PSM.
  void register_service(std::uint16_t psm_value, Service service);

  /// Authentication oracle consulted before accepting inbound channels on
  /// protected PSMs. Default: deny.
  void set_auth_oracle(std::function<bool(hci::ConnectionHandle)> oracle) {
    auth_oracle_ = std::move(oracle);
  }

  /// MITM oracle for level-3 services: is the link's key authenticated
  /// (Numeric Comparison / Passkey), not a Just Works key? Default: deny.
  void set_mitm_oracle(std::function<bool(hci::ConnectionHandle)> oracle) {
    mitm_oracle_ = std::move(oracle);
  }

  /// Open an outbound channel.
  void connect_channel(hci::ConnectionHandle handle, std::uint16_t psm_value,
                       ConnectCallback callback);

  /// Send data on an established channel.
  void send(const L2capChannel& channel, BytesView data);

  /// Send an echo request (keep-alive / RTT probe). Callback on response.
  void echo(hci::ConnectionHandle handle, BytesView payload, std::function<void()> on_response);

  /// Feed an inbound ACL payload from the controller.
  void on_acl_data(hci::ConnectionHandle handle, BytesView payload);

  /// Drop all channels on a dead ACL link.
  void on_disconnected(hci::ConnectionHandle handle);

  /// Open channel count on a link — the host's idle policy keys off this.
  [[nodiscard]] std::size_t channel_count(hci::ConnectionHandle handle) const;

  /// No in-flight signaling exchanges holding completion callbacks — the
  /// precondition for a strict (forkable) snapshot of this layer.
  [[nodiscard]] bool quiescent() const { return pending_.empty() && pending_echo_.empty(); }

  /// Snapshot support: established channels and the CID/signaling-id
  /// allocators. Pending connects/echoes hold callbacks and are not
  /// serialized: kRewind clears them (a strict capture point has none),
  /// kInPlace leaves them running.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r, state::RestoreMode mode);

 private:
  struct PendingConnect {
    std::uint16_t psm = 0;
    ConnectCallback callback;
  };

  void handle_signaling(hci::ConnectionHandle handle, BytesView payload);
  void send_signaling(hci::ConnectionHandle handle, std::uint8_t code, std::uint8_t id,
                      BytesView payload);
  std::uint16_t allocate_cid();

  AclSender sender_;
  std::map<std::uint16_t, Service> services_;
  std::function<bool(hci::ConnectionHandle)> auth_oracle_;
  std::function<bool(hci::ConnectionHandle)> mitm_oracle_;
  // Channels keyed by (handle, local_cid).
  std::map<std::pair<hci::ConnectionHandle, std::uint16_t>, L2capChannel> channels_;
  // Outstanding outbound connects keyed by (handle, signaling id).
  std::map<std::pair<hci::ConnectionHandle, std::uint8_t>, PendingConnect> pending_;
  std::map<std::pair<hci::ConnectionHandle, std::uint8_t>, std::function<void()>> pending_echo_;
  std::uint16_t next_cid_ = 0x0040;
  std::uint8_t next_id_ = 1;
};

}  // namespace blap::host
