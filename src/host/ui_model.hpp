// ui_model.hpp — association-model selection and confirmation-popup policy.
//
// Encodes the IO-capability mapping of SSP Authentication Stage 1 (the
// paper's Fig. 7) and the version-dependent popup rules the page blocking
// attack rides on:
//   * Bluetooth <= 4.2: a DisplayYesNo device confirms silently when it is
//     the *pairing initiator* of a Just Works association, and only prompts
//     the user when it is the responder;
//   * Bluetooth >= 5.0: a DisplayYesNo device always shows a Yes/No popup —
//     but the popup carries no numeric value when the peer is
//     NoInputNoOutput, so the user cannot tell C from A (paper §V-B2).
#pragma once

#include <cstdint>
#include <string>

#include "hci/constants.hpp"

namespace blap::host {

enum class BtVersion : std::uint8_t {
  kV4_2,  // "4.2 and lower" regime of Fig. 7a
  kV5_0,  // "5.0 and higher" regime of Fig. 7b
};

[[nodiscard]] const char* to_string(BtVersion version);

enum class AssociationModel : std::uint8_t {
  kNumericComparison,  // both display + confirm
  kJustWorks,          // numeric comparison with automatic confirmation
  kPasskeyEntry,
  kOutOfBand,
};

[[nodiscard]] const char* to_string(AssociationModel model);

/// The spec's IO-capability mapping for Authentication Stage 1 (OOB absent):
/// which association model runs for a given (initiator, responder) pair.
[[nodiscard]] AssociationModel select_association_model(hci::IoCapability initiator,
                                                        hci::IoCapability responder);

/// What the user experiences during stage-1 confirmation on ONE device.
struct ConfirmationBehavior {
  bool shows_popup = false;          // any UI at all
  bool shows_numeric_value = false;  // six-digit comparison value displayed
  bool automatic_confirmation = false;  // stack confirms without the user
};

/// Popup behaviour for a device with `local` IO capability pairing a peer
/// with `remote`, under version `version`, acting as initiator or responder.
[[nodiscard]] ConfirmationBehavior confirmation_behavior(BtVersion version,
                                                         hci::IoCapability local,
                                                         hci::IoCapability remote,
                                                         bool local_is_initiator);

/// Cell text for the Fig. 7 matrices (used by the reproduction bench).
[[nodiscard]] std::string describe_cell(BtVersion version, hci::IoCapability initiator,
                                        hci::IoCapability responder);

}  // namespace blap::host
