#include "host/pbap.hpp"

namespace blap::host {

namespace {
constexpr std::uint8_t kPullRequest = 0x10;
constexpr std::uint8_t kPullResponse = 0x11;
}  // namespace

bool PbapProfile::handle_server(L2cap& l2cap, const L2capChannel& channel, BytesView data) {
  ByteReader r(data);
  auto code = r.u8();
  if (!code || *code != kPullRequest) return false;
  ++serves_;
  ByteWriter w;
  w.u8(kPullResponse);
  w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(phonebook_.size(), 255)));
  for (std::size_t i = 0; i < phonebook_.size() && i < 255; ++i) {
    const std::string& entry = phonebook_[i];
    const std::size_t n = std::min<std::size_t>(entry.size(), 255);
    w.u8(static_cast<std::uint8_t>(n));
    w.raw(BytesView(reinterpret_cast<const std::uint8_t*>(entry.data()), n));
  }
  l2cap.send(channel, w.data());
  return true;
}

void PbapProfile::pull(L2cap& l2cap, const L2capChannel& channel) {
  ByteWriter w;
  w.u8(kPullRequest);
  l2cap.send(channel, w.data());
}

void PbapProfile::on_client_data(BytesView data) {
  ByteReader r(data);
  auto code = r.u8();
  auto count = r.u8();
  if (!code || *code != kPullResponse || !count) return;
  std::vector<std::string> entries;
  for (std::uint8_t i = 0; i < *count; ++i) {
    auto len = r.u8();
    if (!len) break;
    auto bytes = r.bytes(*len);
    if (!bytes) break;
    entries.emplace_back(bytes->begin(), bytes->end());
  }
  if (client_callback_) {
    auto cb = std::move(client_callback_);
    client_callback_ = nullptr;
    cb(std::move(entries));
  }
}

}  // namespace blap::host
