#include "host/hfp.hpp"

namespace blap::host {

namespace {
constexpr std::uint8_t kAudioMarker = 0xA0;
}

bool HfpProfile::handle(L2cap& l2cap, const L2capChannel& channel, BytesView data) {
  if (data.size() >= 2 && data[0] == 'A' && data[1] == 'T') {
    const std::string command(data.begin(), data.end());
    at_log_.push_back(command);
    if (command == "ATA") {
      call_active_ = true;
      send_at(l2cap, channel, "AT:OK");
    } else if (command == "AT+CHUP") {
      call_active_ = false;
      send_at(l2cap, channel, "AT:OK");
    }
    return true;
  }
  if (data.size() >= 4 && data[0] == 'R' && data[1] == 'I') {  // "RING"
    at_log_.emplace_back(data.begin(), data.end());
    return true;
  }
  if (!data.empty() && data[0] == kAudioMarker) {
    ByteReader r(data);
    (void)r.u8();
    auto seq = r.u16();
    if (!seq) return true;
    if (call_active_) received_.push_back(AudioFrame{*seq, to_bytes(r.rest())});
    return true;
  }
  return false;
}

void HfpProfile::send_at(L2cap& l2cap, const L2capChannel& channel,
                         const std::string& command) {
  l2cap.send(channel,
             BytesView(reinterpret_cast<const std::uint8_t*>(command.data()), command.size()));
}

void HfpProfile::send_audio(L2cap& l2cap, const L2capChannel& channel, BytesView samples) {
  ByteWriter w;
  w.u8(kAudioMarker).u16(tx_sequence_++).raw(samples);
  l2cap.send(channel, w.data());
}

}  // namespace blap::host
