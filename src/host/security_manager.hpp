// security_manager.hpp — the host's bonded-device database.
//
// Bluedroid persists bonds in /data/misc/bluedroid/bt_config.conf; BlueZ in
// /var/lib/bluetooth/<adapter>/<peer>/info. Both store the 128-bit link key
// in plaintext next to the peer's name and service UUIDs. BLAP reproduces the
// bt_config.conf shape because the paper's impersonation step (Fig. 10)
// works by *writing a fake bonding entry* into exactly this file: BD_ADDR of
// the victim, the extracted link key, and the PAN service UUIDs.
//
// Key-lifetime policy reproduced from real stacks: a bond is deleted when
// authentication completes with Authentication Failure (0x05) or PIN or Key
// Missing (0x06) — but NOT on timeouts. That asymmetry is why the extraction
// attack stalls the challenge instead of answering it wrongly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bdaddr.hpp"
#include "common/scheduler.hpp"
#include "common/state_io.hpp"
#include "common/uuid.hpp"
#include "crypto/keys.hpp"
#include "hci/constants.hpp"

namespace blap::host {

/// How the host retries a pairing that failed for *channel* reasons (the
/// fault-injection layer's timeouts), as opposed to cryptographic ones.
/// Backoff doubles per attempt: initial_backoff, 2x, 4x, ...
struct RetryPolicy {
  unsigned max_attempts = 3;          // total tries, including the first
  SimTime initial_backoff = kSecond;  // wait before the first retry
};

struct BondRecord {
  BdAddr address;
  std::string name;
  crypto::LinkKey link_key{};
  crypto::LinkKeyType key_type = crypto::LinkKeyType::kUnauthenticatedCombinationP192;
  std::vector<Uuid> services;
};

class SecurityManager {
 public:
  /// Store (or overwrite) a bond.
  void store_bond(BondRecord record);

  /// The stored link key for a peer, if bonded.
  [[nodiscard]] std::optional<crypto::LinkKey> link_key_for(const BdAddr& address) const;

  [[nodiscard]] const BondRecord* bond_for(const BdAddr& address) const;
  [[nodiscard]] bool is_bonded(const BdAddr& address) const;
  void remove_bond(const BdAddr& address);
  [[nodiscard]] std::vector<BondRecord> bonds() const;
  [[nodiscard]] std::size_t bond_count() const { return bonds_.size(); }

  /// Apply the stack's key-invalidation policy for an authentication result.
  /// Returns true if the bond was purged.
  bool on_authentication_result(const BdAddr& address, hci::Status status);

  // --- pairing retry policy (fault-recovery path) ---------------------------

  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// True when `status` is transient channel trouble (a timeout family code)
  /// rather than a cryptographic or policy failure. Only transient failures
  /// are worth retrying — retrying kAuthenticationFailure would hammer a peer
  /// that rejected us on purpose.
  [[nodiscard]] static bool is_transient_failure(hci::Status status);

  /// Record a failed pairing attempt toward a peer. Returns the backoff to
  /// wait before the next attempt, or nullopt when the failure is permanent
  /// or the attempt budget is spent (the caller should surface the error).
  [[nodiscard]] std::optional<SimTime> note_pairing_failure(const BdAddr& address,
                                                            hci::Status status);

  /// A successful pairing resets the peer's failure counter.
  void note_pairing_success(const BdAddr& address);

  [[nodiscard]] unsigned pairing_attempts(const BdAddr& address) const;

  /// Serialize in bt_config.conf format (paper Fig. 10):
  ///   [aa:bb:cc:dd:ee:ff]
  ///   Name = VELVET
  ///   Service = 00001115-... 00001116-...
  ///   LinkKey = 71a70981f30d6af9e20adee8aafe3264
  ///   LinkKeyType = 4
  [[nodiscard]] std::string to_bt_config() const;

  /// Parse a bt_config.conf document. Unknown keys are ignored; malformed
  /// sections are skipped (a hand-edited config must not brick the stack).
  [[nodiscard]] static SecurityManager from_bt_config(const std::string& text);

  /// Snapshot support: binary round-trip of bonds, per-peer failure
  /// counters and the retry policy (bt_config text would lose the
  /// counters and policy).
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

 private:
  std::map<BdAddr, BondRecord> bonds_;
  RetryPolicy retry_policy_;
  // Consecutive transient pairing failures per peer (ordered for the same
  // determinism reason as bonds_).
  std::map<BdAddr, unsigned> failed_attempts_;
};

}  // namespace blap::host
