#include "host/host.hpp"

#include "chaos/failpoint.hpp"

namespace blap::host {

HostStack::HostStack(Scheduler& scheduler, transport::HciTransport& transport, HostConfig config)
    : scheduler_(scheduler), transport_(transport), config_(std::move(config)),
      l2cap_([this](hci::ConnectionHandle handle, BytesView payload) {
        Acl* acl = acl_by_handle(handle);
        if (acl != nullptr) touch(*acl);
        transport_.send(hci::Direction::kHostToController, hci::make_acl(handle, payload));
      }),
      sdp_client_(l2cap_) {
  transport_.set_host_receiver([this](const hci::HciPacket& p) { on_packet(p); });
  // The HCI dump tap records traffic in both directions at the transport —
  // exactly where Android's snoop module and a hardware analyzer sit.
  transport_.add_tap([this](hci::Direction direction, const hci::HciPacket& packet) {
    if (!snoop_enabled_) return;
    hci::SnoopRecord record;
    record.timestamp_us = scheduler_.now();
    record.direction = direction;
    record.packet = packet;
    snoop_.append(std::move(record));
  });

  l2cap_.set_auth_oracle([this](hci::ConnectionHandle handle) {
    Acl* acl = acl_by_handle(handle);
    return acl != nullptr && (acl->authenticated || acl->encrypted);
  });
  l2cap_.set_mitm_oracle([this](hci::ConnectionHandle handle) {
    Acl* acl = acl_by_handle(handle);
    if (acl == nullptr || !(acl->authenticated || acl->encrypted)) return false;
    const BondRecord* bond = security_.bond_for(acl->peer);
    if (bond == nullptr) return false;
    // Only keys derived with user verification qualify for level 3.
    return bond->key_type == crypto::LinkKeyType::kAuthenticatedCombinationP192 ||
           bond->key_type == crypto::LinkKeyType::kAuthenticatedCombinationP256;
  });

  // SDP: requests -> server, responses -> client (shared PSM, both roles).
  L2cap::Service sdp_service;
  sdp_service.requires_authentication = false;
  sdp_service.on_data = [this](const L2capChannel& channel, BytesView data) {
    if (!sdp_server_.handle(l2cap_, channel, data)) sdp_client_.on_response(data);
  };
  l2cap_.register_service(psm::kSdp, std::move(sdp_service));

  // PAN/BNEP: setup requests -> server, setup responses -> client.
  L2cap::Service pan_service;
  pan_service.requires_authentication = true;
  pan_service.on_data = [this](const L2capChannel& channel, BytesView data) {
    if (!pan_.handle_server(l2cap_, channel, data)) pan_.on_client_data(data);
  };
  l2cap_.register_service(psm::kBnep, std::move(pan_service));

  // PBAP: phone book pulls, authenticated only — the paper's §III target
  // data. A default phone book marks the device's "sensitive" content.
  L2cap::Service pbap_service;
  pbap_service.requires_authentication = true;
  pbap_service.on_data = [this](const L2capChannel& channel, BytesView data) {
    if (!pbap_.handle_server(l2cap_, channel, data)) pbap_.on_client_data(data);
  };
  l2cap_.register_service(psm_ext::kPbap, std::move(pbap_service));
  pbap_.set_phonebook({"BEGIN:VCARD N:Alice TEL:+1-202-555-0101 END:VCARD",
                       "BEGIN:VCARD N:Bob TEL:+1-202-555-0102 END:VCARD",
                       "BEGIN:VCARD N:Charlie TEL:+1-202-555-0103 END:VCARD"});

  // HFP: AT control + call audio, authenticated only. Channels are tracked
  // per peer on both roles so either side can send RING/audio afterwards.
  L2cap::Service hfp_service;
  hfp_service.requires_authentication = true;
  hfp_service.on_open = [this](const L2capChannel& channel) {
    if (Acl* acl = acl_by_handle(channel.acl_handle)) hfp_channels_[acl->peer] = channel;
  };
  hfp_service.on_data = [this](const L2capChannel& channel, BytesView data) {
    hfp_.handle(l2cap_, channel, data);
  };
  l2cap_.register_service(psm_ext2::kHfp, std::move(hfp_service));

  // MAP: message store access, authenticated only.
  L2cap::Service map_service;
  map_service.requires_authentication = true;
  map_service.on_data = [this](const L2capChannel& channel, BytesView data) {
    if (!map_.handle_server(l2cap_, channel, data)) map_.on_client_data(data);
  };
  l2cap_.register_service(psm_ext3::kMap, std::move(map_service));
  map_.add_message(0x0001, "FROM:+1-202-555-0199 BODY:Meeting moved to 3pm");
  map_.add_message(0x0002, "FROM:bank BODY:Your one-time code is 482913");

  sdp_server_.add_service(uuid16::kSdpServer);
  sdp_server_.add_service(uuid16::kPanu);
  sdp_server_.add_service(uuid16::kNap);
  sdp_server_.add_service(uuid16::kPbap);
  sdp_server_.add_service(uuid16::kHandsFree);
  sdp_server_.add_service(uuid16::kMap);
}

void HostStack::power_on() {
  send_command(hci::ResetCmd{}.encode());
  send_command(hci::ReadBdAddrCmd{}.encode());
  send_command(hci::WriteLocalNameCmd{config_.device_name}.encode());
  send_command(hci::WriteSimplePairingModeCmd{
      static_cast<std::uint8_t>(config_.simple_pairing ? 0x01 : 0x00)}.encode());
  send_command(hci::WriteScanEnableCmd{hci::ScanEnable::kInquiryAndPage}.encode());
}

void HostStack::send_command(const hci::HciPacket& packet) {
  if (obs_ != nullptr) obs_->count("host.cmds_sent");
  transport_.send(hci::Direction::kHostToController, packet);
}

void HostStack::enable_snoop(bool enabled) {
  if (enabled && !config_.hci_dump_available) {
    BLAP_WARN("host", "%s: platform provides no HCI dump facility", config_.device_name.c_str());
    return;
  }
  snoop_enabled_ = enabled;
}

// ---------------------------------------------------------------------------
// GAP operations
// ---------------------------------------------------------------------------

void HostStack::discover(std::uint8_t inquiry_length,
                         std::function<void(std::vector<Discovered>)> callback) {
  discovery_callback_ = std::move(callback);
  discovery_results_.clear();
  hci::InquiryCmd cmd;
  cmd.inquiry_length = inquiry_length;
  send_command(cmd.encode());
}

void HostStack::set_scan_mode(hci::ScanEnable mode) {
  send_command(hci::WriteScanEnableCmd{mode}.encode());
}

void HostStack::discover_services(const BdAddr& peer, std::uint16_t uuid16,
                                  std::function<void(std::optional<SdpClient::Result>)> callback) {
  Acl* acl = acl_by_peer(peer);
  if (acl != nullptr) {
    sdp_client_.search(acl->handle, uuid16, std::move(callback));
    return;
  }
  // SDP needs no authentication, only an ACL: connect first.
  connect_only(peer, [this, peer, uuid16, callback = std::move(callback)](hci::Status status) {
    Acl* connected = acl_by_peer(peer);
    if (status != hci::Status::kSuccess || connected == nullptr) {
      if (callback) callback(std::nullopt);
      return;
    }
    sdp_client_.search(connected->handle, uuid16, callback);
  });
}

void HostStack::request_remote_name(const BdAddr& peer,
                                    std::function<void(std::optional<std::string>)> callback) {
  name_request_ = {peer, std::move(callback)};
  hci::RemoteNameRequestCmd cmd;
  cmd.bdaddr = peer;
  send_command(cmd.encode());
}

void HostStack::on_remote_name_complete(const hci::RemoteNameRequestCompleteEvt& evt) {
  if (!name_request_ || !(name_request_->first == evt.bdaddr)) return;
  auto callback = std::move(name_request_->second);
  name_request_.reset();
  if (!callback) return;
  if (evt.status == hci::Status::kSuccess) callback(evt.remote_name);
  else callback(std::nullopt);
}

void HostStack::pair(const BdAddr& peer, StatusCallback callback) {
  if (pair_op_) {
    if (callback) callback(hci::Status::kPairingNotAllowed);  // one op at a time
    return;
  }
  PairOp op;
  op.peer = peer;
  op.stage = OpStage::kConnecting;
  op.callback = std::move(callback);
  if (obs_ != nullptr) {
    obs_->count("host.pair_ops");
    if (obs_->tracing())
      op.obs_span = obs_->begin_span(scheduler_.now(), obs_tid_, obs::Layer::kHost, "pair_op",
                                     strfmt("target %s", peer.to_string().c_str()));
  }
  adopt_pair_op(std::move(op));

  // THE CRITICAL GAP BEHAVIOUR (paper §V-B): if an ACL to this BD_ADDR
  // already exists, skip connection establishment and send the pairing
  // request down the existing link — without verifying who created it.
  if (Acl* existing = acl_by_peer(peer)) {
    continue_pair_after_connect(*existing);
    return;
  }
  hci::CreateConnectionCmd cmd;
  cmd.bdaddr = peer;
  send_command(cmd.encode());
}

void HostStack::continue_pair_after_connect(Acl& acl) {
  if (!pair_op_ || !(pair_op_->peer == acl.peer)) return;
  pair_op_->stage = OpStage::kAuthenticating;
  acl.is_pairing_initiator = true;
  touch(acl);
  send_command(hci::AuthenticationRequestedCmd{acl.handle}.encode());
}

void HostStack::connect_only(const BdAddr& peer, StatusCallback callback) {
  if (acl_by_peer(peer) != nullptr) {
    if (callback) callback(hci::Status::kConnectionAlreadyExists);
    return;
  }
  connect_op_ = {peer, std::move(callback)};
  hci::CreateConnectionCmd cmd;
  cmd.bdaddr = peer;
  send_command(cmd.encode());
}

void HostStack::connect_pan(const BdAddr& peer, BoolCallback callback) {
  if (pair_op_) {
    if (callback) callback(false);
    return;
  }
  PairOp op;
  op.peer = peer;
  op.profile = ProfileTarget::kPan;
  op.pan_callback = std::move(callback);
  Acl* acl = acl_by_peer(peer);
  if (acl != nullptr && (acl->authenticated || acl->encrypted)) {
    op.stage = OpStage::kChannel;
    adopt_pair_op(std::move(op));
    start_profile_channel(peer);
    return;
  }
  // Authenticate first (the profile's GAP security requirement).
  op.stage = OpStage::kConnecting;
  adopt_pair_op(std::move(op));
  if (acl != nullptr) {
    continue_pair_after_connect(*acl);
  } else {
    hci::CreateConnectionCmd cmd;
    cmd.bdaddr = peer;
    send_command(cmd.encode());
  }
}

void HostStack::pull_phonebook(const BdAddr& peer, PbapProfile::PullCallback callback) {
  if (pair_op_) {
    if (callback) callback(std::nullopt);
    return;
  }
  PairOp op;
  op.peer = peer;
  op.profile = ProfileTarget::kPbap;
  op.pbap_callback = std::move(callback);
  Acl* acl = acl_by_peer(peer);
  if (acl != nullptr && (acl->authenticated || acl->encrypted)) {
    op.stage = OpStage::kChannel;
    adopt_pair_op(std::move(op));
    start_profile_channel(peer);
    return;
  }
  op.stage = OpStage::kConnecting;
  adopt_pair_op(std::move(op));
  if (acl != nullptr) {
    continue_pair_after_connect(*acl);
  } else {
    hci::CreateConnectionCmd cmd;
    cmd.bdaddr = peer;
    send_command(cmd.encode());
  }
}

void HostStack::read_messages(
    const BdAddr& peer, std::function<void(std::optional<std::vector<std::string>>)> callback) {
  if (pair_op_) {
    if (callback) callback(std::nullopt);
    return;
  }
  PairOp op;
  op.peer = peer;
  op.profile = ProfileTarget::kMap;
  op.map_callback = std::move(callback);
  Acl* acl = acl_by_peer(peer);
  if (acl != nullptr && (acl->authenticated || acl->encrypted)) {
    op.stage = OpStage::kChannel;
    adopt_pair_op(std::move(op));
    start_profile_channel(peer);
    return;
  }
  op.stage = OpStage::kConnecting;
  adopt_pair_op(std::move(op));
  if (acl != nullptr) {
    continue_pair_after_connect(*acl);
  } else {
    hci::CreateConnectionCmd cmd;
    cmd.bdaddr = peer;
    send_command(cmd.encode());
  }
}

void HostStack::continue_map_read(const BdAddr& peer) {
  if (!map_read_ || !pair_op_ || pair_op_->profile != ProfileTarget::kMap) return;
  if (map_read_->next_index >= map_read_->handles.size()) {
    // Done: deliver the loot.
    auto callback = std::move(pair_op_->map_callback);
    auto bodies = std::move(map_read_->bodies);
    map_read_.reset();
    pair_op_.reset();
    if (callback) callback(std::move(bodies));
    return;
  }
  const std::uint16_t handle = map_read_->handles[map_read_->next_index++];
  map_.set_get_callback([this, peer](std::optional<std::string> body) {
    if (!map_read_) return;
    if (body) map_read_->bodies.push_back(std::move(*body));
    continue_map_read(peer);
  });
  map_.request_message(l2cap_, map_read_->channel, handle);
}

void HostStack::connect_hfp(const BdAddr& peer, BoolCallback callback) {
  if (pair_op_) {
    if (callback) callback(false);
    return;
  }
  PairOp op;
  op.peer = peer;
  op.profile = ProfileTarget::kHfp;
  op.hfp_callback = std::move(callback);
  Acl* acl = acl_by_peer(peer);
  if (acl != nullptr && (acl->authenticated || acl->encrypted)) {
    op.stage = OpStage::kChannel;
    adopt_pair_op(std::move(op));
    start_profile_channel(peer);
    return;
  }
  op.stage = OpStage::kConnecting;
  adopt_pair_op(std::move(op));
  if (acl != nullptr) {
    continue_pair_after_connect(*acl);
  } else {
    hci::CreateConnectionCmd cmd;
    cmd.bdaddr = peer;
    send_command(cmd.encode());
  }
}

void HostStack::hfp_send_at(const BdAddr& peer, const std::string& command) {
  auto it = hfp_channels_.find(peer);
  if (it == hfp_channels_.end()) return;
  hfp_.send_at(l2cap_, it->second, command);
}

void HostStack::hfp_send_audio(const BdAddr& peer, BytesView samples) {
  auto it = hfp_channels_.find(peer);
  if (it == hfp_channels_.end()) return;
  hfp_.send_audio(l2cap_, it->second, samples);
}

void HostStack::start_profile_channel(const BdAddr& peer) {
  Acl* acl = acl_by_peer(peer);
  if (acl == nullptr || !pair_op_ || pair_op_->profile == ProfileTarget::kNone) return;
  pair_op_->stage = OpStage::kChannel;
  const ProfileTarget profile = pair_op_->profile;

  auto fail = [this, peer, profile] {
    if (!pair_op_ || !(pair_op_->peer == peer)) return;
    PairOp op = std::move(*pair_op_);
    pair_op_.reset();
    if (profile == ProfileTarget::kPan && op.pan_callback) op.pan_callback(false);
    if (profile == ProfileTarget::kPbap && op.pbap_callback) op.pbap_callback(std::nullopt);
    if (profile == ProfileTarget::kHfp && op.hfp_callback) op.hfp_callback(false);
    if (profile == ProfileTarget::kMap && op.map_callback) op.map_callback(std::nullopt);
  };

  if (profile == ProfileTarget::kPan) {
    pan_.set_client_callback([this, peer](bool connected) {
      if (pair_op_ && pair_op_->profile == ProfileTarget::kPan && pair_op_->peer == peer) {
        auto callback = std::move(pair_op_->pan_callback);
        pair_op_.reset();
        if (callback) callback(connected);
      }
    });
    l2cap_.connect_channel(acl->handle, psm::kBnep,
                           [this, fail](std::optional<L2capChannel> channel) {
                             if (!channel) {
                               fail();
                               return;
                             }
                             pan_.setup(l2cap_, *channel);
                           });
    return;
  }

  if (profile == ProfileTarget::kHfp) {
    l2cap_.connect_channel(acl->handle, psm_ext2::kHfp,
                           [this, peer, fail](std::optional<L2capChannel> channel) {
                             if (!channel) {
                               fail();
                               return;
                             }
                             hfp_channels_[peer] = *channel;
                             if (pair_op_ && pair_op_->profile == ProfileTarget::kHfp &&
                                 pair_op_->peer == peer) {
                               auto callback = std::move(pair_op_->hfp_callback);
                               pair_op_.reset();
                               if (callback) callback(true);
                             }
                           });
    return;
  }

  if (profile == ProfileTarget::kMap) {
    l2cap_.connect_channel(
        acl->handle, psm_ext3::kMap, [this, peer, fail](std::optional<L2capChannel> channel) {
          if (!channel) {
            fail();
            return;
          }
          map_read_ = MapReadState{*channel, {}, 0, {}};
          map_.set_list_callback([this, peer](std::optional<std::vector<std::uint16_t>> handles) {
            if (!map_read_) return;
            if (!handles) {
              map_read_.reset();
              if (pair_op_ && pair_op_->profile == ProfileTarget::kMap) {
                auto callback = std::move(pair_op_->map_callback);
                pair_op_.reset();
                if (callback) callback(std::nullopt);
              }
              return;
            }
            map_read_->handles = std::move(*handles);
            continue_map_read(peer);
          });
          map_.request_list(l2cap_, *channel);
        });
    return;
  }

  // PBAP: pull the phone book once the channel opens.
  pbap_.set_client_callback(
      [this, peer](std::optional<std::vector<std::string>> entries) {
        if (pair_op_ && pair_op_->profile == ProfileTarget::kPbap && pair_op_->peer == peer) {
          auto callback = std::move(pair_op_->pbap_callback);
          pair_op_.reset();
          if (callback) callback(std::move(entries));
        }
      });
  l2cap_.connect_channel(acl->handle, psm_ext::kPbap,
                         [this, fail](std::optional<L2capChannel> channel) {
                           if (!channel) {
                             fail();
                             return;
                           }
                           pbap_.pull(l2cap_, *channel);
                         });
}

void HostStack::send_echo(const BdAddr& peer, std::function<void()> on_response) {
  Acl* acl = acl_by_peer(peer);
  if (acl == nullptr) return;
  const Bytes ping = {'p', 'i', 'n', 'g'};
  l2cap_.echo(acl->handle, ping, std::move(on_response));
}

void HostStack::disconnect(const BdAddr& peer, hci::Status reason) {
  Acl* acl = acl_by_peer(peer);
  if (acl == nullptr) return;
  hci::DisconnectCmd cmd;
  cmd.handle = acl->handle;
  cmd.reason = reason;
  send_command(cmd.encode());
}

bool HostStack::has_acl(const BdAddr& peer) const {
  for (const auto& [handle, acl] : acls_)
    if (acl.peer == peer) return true;
  return false;
}

std::vector<HostStack::AclInfo> HostStack::acls() const {
  std::vector<AclInfo> out;
  for (const auto& [handle, acl] : acls_)
    out.push_back(AclInfo{acl.handle, acl.peer, acl.initiator, acl.authenticated, acl.encrypted,
                          acl.degraded});
  return out;
}

HostStack::Acl* HostStack::acl_by_peer(const BdAddr& peer) {
  for (auto& [handle, acl] : acls_)
    if (acl.peer == peer) return &acl;
  return nullptr;
}

HostStack::Acl* HostStack::acl_by_handle(hci::ConnectionHandle handle) {
  auto it = acls_.find(handle);
  return it == acls_.end() ? nullptr : &it->second;
}

void HostStack::touch(Acl& acl) {
  acl.last_activity = scheduler_.now();
  arm_idle_timer(acl);
}

void HostStack::arm_idle_timer(Acl& acl) {
  acl.idle_timer.cancel();
  const hci::ConnectionHandle handle = acl.handle;
  SimTime idle_window = config_.acl_idle_timeout;
  // The idle bookkeeping mistimes the window: a link in active use is
  // checked (and possibly dropped) almost immediately.
  if (BLAP_FAILPOINT("host.acl.idle_early")) idle_window = 1000;
  acl.idle_timer = scheduler_.schedule_in(idle_window, [this, handle] {
    Acl* live = acl_by_handle(handle);
    if (live == nullptr) return;
    const bool busy = l2cap_.channel_count(handle) > 0 ||
                      (pair_op_ && pair_op_->peer == live->peer);
    if (busy) {
      arm_idle_timer(*live);
      return;
    }
    BLAP_DEBUG("host", "%s: dropping idle ACL to %s", config_.device_name.c_str(),
               live->peer.to_string().c_str());
    hci::DisconnectCmd cmd;
    cmd.handle = handle;
    cmd.reason = hci::Status::kRemoteUserTerminatedConnection;
    send_command(cmd.encode());
  });
}

// ---------------------------------------------------------------------------
// Fault recovery
// ---------------------------------------------------------------------------

void HostStack::adopt_pair_op(PairOp op) {
  pair_op_ = std::move(op);
  arm_pair_watchdog();
}

void HostStack::arm_pair_watchdog() {
  if (!config_.fault_recovery || !pair_op_) return;
  pair_op_->watchdog.cancel();
  const BdAddr peer = pair_op_->peer;
  SimTime watchdog_window = config_.pair_op_watchdog;
  // The watchdog fires while the pairing is still making healthy progress:
  // the op fails with a timeout and (with recovery on) retries from clean.
  if (BLAP_FAILPOINT("host.pair.watchdog_early")) watchdog_window = 1000;
  pair_op_->watchdog = scheduler_.schedule_in(watchdog_window, [this, peer] {
    // The op may have completed (or been replaced) since the timer was set.
    if (!pair_op_ || !(pair_op_->peer == peer)) return;
    if (obs_ != nullptr) {
      obs_->count("host.watchdogs_fired");
      if (obs_->tracing())
        obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kHost, "pair_watchdog",
                      strfmt("operation to %s hung, failing with Connection Timeout",
                             peer.to_string().c_str()));
    }
    BLAP_WARN("host", "%s: pair operation to %s hung for %llu us — watchdog teardown",
              config_.device_name.c_str(), peer.to_string().c_str(),
              static_cast<unsigned long long>(config_.pair_op_watchdog));
    mark_degraded(peer, "pair operation hung");
    finish_pair_op(peer, hci::Status::kConnectionTimeout);
    // Drop the wedged ACL so a retry (scheduled by finish_pair_op) starts
    // from a clean page instead of reusing a dead link.
    if (acl_by_peer(peer) != nullptr) disconnect(peer);
  });
}

void HostStack::mark_degraded(const BdAddr& peer, const char* why) {
  Acl* acl = acl_by_peer(peer);
  if (acl == nullptr || acl->degraded) return;
  acl->degraded = true;
  if (obs_ != nullptr) {
    obs_->count("host.acls_degraded");
    if (obs_->tracing())
      obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kHost, "acl_degraded",
                    strfmt("%s: %s", peer.to_string().c_str(), why));
  }
  BLAP_INFO("host", "%s: ACL to %s degraded (%s)", config_.device_name.c_str(),
            peer.to_string().c_str(), why);
}

void HostStack::retry_pair_op(PairOp op) {
  // The queued retry is abandoned (the stack was tearing the profile down
  // while the backoff ran): the original operation fails with a timeout —
  // exactly the slot-reclaimed path below, deliberately.
  if (BLAP_FAILPOINT("host.pair.retry_abandoned")) {
    dispatch_pair_result(std::move(op), hci::Status::kConnectionTimeout);
    return;
  }
  if (pair_op_) {
    // Another operation claimed the slot during the backoff; surface the
    // original failure instead of queueing behind it.
    dispatch_pair_result(std::move(op), hci::Status::kConnectionTimeout);
    return;
  }
  if (op.profile == ProfileTarget::kMap) map_read_.reset();  // stale read state
  const BdAddr peer = op.peer;
  op.stage = OpStage::kConnecting;
  adopt_pair_op(std::move(op));
  BLAP_INFO("host", "%s: retrying pair operation to %s", config_.device_name.c_str(),
            peer.to_string().c_str());
  if (Acl* acl = acl_by_peer(peer)) {
    continue_pair_after_connect(*acl);
  } else {
    hci::CreateConnectionCmd cmd;
    cmd.bdaddr = peer;
    send_command(cmd.encode());
  }
}

// ---------------------------------------------------------------------------
// HCI receive path (btu_hcif)
// ---------------------------------------------------------------------------

void HostStack::on_packet(const hci::HciPacket& packet) {
  if (ploc_active_) {
    ploc_queue_.push_back(packet);
    return;
  }
  // PLOC hook (paper Fig. 13): stall processing when a Connection_Complete
  // arrives, queueing it and everything after it for ploc_delay.
  if (hooks_.ploc_delay > 0 && packet.type == hci::PacketType::kEvent &&
      packet.event_code() == hci::ev::kConnectionComplete) {
    BLAP_INFO("host", "%s: entering PLOC for %llu us", config_.device_name.c_str(),
              static_cast<unsigned long long>(hooks_.ploc_delay));
    ploc_active_ = true;
    if (obs_ != nullptr) {
      obs_->count("host.ploc_entries");
      if (obs_->tracing())
        obs_ploc_span_ = obs_->begin_span(scheduler_.now(), obs_tid_, obs::Layer::kHost, "ploc",
                                          "Fig. 13 hook: HCI processing stalled");
    }
    ploc_queue_.push_back(packet);
    scheduler_.schedule_in(hooks_.ploc_delay, [this] {
      ploc_active_ = false;
      BLAP_INFO("host", "%s: leaving PLOC (%zu queued events)", config_.device_name.c_str(),
                ploc_queue_.size());
      if (obs_ != nullptr && obs_ploc_span_ != 0) {
        obs_->end_span(scheduler_.now(), obs_ploc_span_,
                       strfmt("%zu queued packets replayed", ploc_queue_.size()));
        obs_ploc_span_ = 0;
      }
      while (!ploc_queue_.empty() && !ploc_active_) {
        const hci::HciPacket queued = ploc_queue_.front();
        ploc_queue_.pop_front();
        process_packet(queued);
      }
    });
    return;
  }
  process_packet(packet);
}

void HostStack::process_packet(const hci::HciPacket& packet) {
  if (packet.type == hci::PacketType::kAclData) {
    auto handle = packet.acl_handle();
    auto data = packet.acl_data();
    if (!handle || !data) return;
    Acl* acl = acl_by_handle(*handle);
    if (acl != nullptr) touch(*acl);
    l2cap_.on_acl_data(*handle, *data);
    return;
  }
  if (packet.type != hci::PacketType::kEvent) return;
  auto code = packet.event_code();
  auto params = packet.event_params();
  if (!code || !params) return;
  dispatch_event(*code, *params);
}

void HostStack::dispatch_event(std::uint8_t code, BytesView params) {
  if (obs_ != nullptr) obs_->count("host.events_dispatched");
  switch (code) {
    case hci::ev::kConnectionRequest:
      if (auto evt = hci::ConnectionRequestEvt::decode(params)) on_connection_request(*evt);
      break;
    case hci::ev::kConnectionComplete:
      if (auto evt = hci::ConnectionCompleteEvt::decode(params)) on_connection_complete(*evt);
      break;
    case hci::ev::kDisconnectionComplete:
      if (auto evt = hci::DisconnectionCompleteEvt::decode(params))
        on_disconnection_complete(*evt);
      break;
    case hci::ev::kLinkKeyRequest:
      if (auto evt = hci::LinkKeyRequestEvt::decode(params)) on_link_key_request(*evt);
      break;
    case hci::ev::kPinCodeRequest:
      if (auto evt = hci::PinCodeRequestEvt::decode(params)) on_pin_code_request(*evt);
      break;
    case hci::ev::kLinkKeyNotification:
      if (auto evt = hci::LinkKeyNotificationEvt::decode(params)) on_link_key_notification(*evt);
      break;
    case hci::ev::kIoCapabilityRequest:
      if (auto evt = hci::IoCapabilityRequestEvt::decode(params)) on_io_capability_request(*evt);
      break;
    case hci::ev::kIoCapabilityResponse:
      if (auto evt = hci::IoCapabilityResponseEvt::decode(params))
        on_io_capability_response(*evt);
      break;
    case hci::ev::kUserConfirmationRequest:
      if (auto evt = hci::UserConfirmationRequestEvt::decode(params))
        on_user_confirmation_request(*evt);
      break;
    case hci::ev::kSimplePairingComplete:
      if (auto evt = hci::SimplePairingCompleteEvt::decode(params))
        on_simple_pairing_complete(*evt);
      break;
    case hci::ev::kAuthenticationComplete:
      if (auto evt = hci::AuthenticationCompleteEvt::decode(params))
        on_authentication_complete(*evt);
      break;
    case hci::ev::kEncryptionChange:
      if (auto evt = hci::EncryptionChangeEvt::decode(params)) on_encryption_change(*evt);
      break;
    case hci::ev::kInquiryResult:
      if (auto evt = hci::InquiryResultEvt::decode(params)) on_inquiry_result(*evt);
      break;
    case hci::ev::kExtendedInquiryResult:
      if (auto evt = hci::ExtendedInquiryResultEvt::decode(params))
        on_extended_inquiry_result(*evt);
      break;
    case hci::ev::kInquiryComplete:
      on_inquiry_complete();
      break;
    case hci::ev::kRemoteNameRequestComplete:
      if (auto evt = hci::RemoteNameRequestCompleteEvt::decode(params))
        on_remote_name_complete(*evt);
      break;
    case hci::ev::kCommandComplete:
      if (auto evt = hci::CommandCompleteEvt::decode(params)) on_command_complete(*evt);
      break;
    default:
      break;
  }
}

void HostStack::on_command_complete(const hci::CommandCompleteEvt& evt) {
  if (evt.command_opcode == hci::op::kReadBdAddr && evt.return_parameters.size() >= 7) {
    ByteReader r(evt.return_parameters);
    (void)r.u8();  // status
    if (auto addr = BdAddr::from_wire(r)) own_address_ = *addr;
  }
}

void HostStack::on_connection_request(const hci::ConnectionRequestEvt& evt) {
  if (hooks_.ignore_connection_request) {
    // Wedged host: neither accept nor reject. The controller's
    // connection-accept timer owns the half-open link from here.
    if (obs_ != nullptr) obs_->count("host.connection_requests_ignored");
    BLAP_INFO("host", "%s: IGNORING HCI_Connection_Request from %s (fault hook)",
              config_.device_name.c_str(), evt.bdaddr.to_string().c_str());
    return;
  }
  if (!config_.auto_accept_connections) {
    hci::RejectConnectionRequestCmd cmd;
    cmd.bdaddr = evt.bdaddr;
    send_command(cmd.encode());
    return;
  }
  // Policy glitch: the host rejects a connection it would normally accept;
  // the initiator sees its Create_Connection fail and may retry.
  if (BLAP_FAILPOINT("host.connect.reject")) {
    hci::RejectConnectionRequestCmd cmd;
    cmd.bdaddr = evt.bdaddr;
    send_command(cmd.encode());
    return;
  }
  hci::AcceptConnectionRequestCmd cmd;
  cmd.bdaddr = evt.bdaddr;
  pending_accepts_.insert(evt.bdaddr);
  send_command(cmd.encode());
}

void HostStack::on_connection_complete(const hci::ConnectionCompleteEvt& evt) {
  const bool was_pending_accept = pending_accepts_.erase(evt.bdaddr) > 0;
  if (evt.status != hci::Status::kSuccess) {
    if (pair_op_ && pair_op_->peer == evt.bdaddr && pair_op_->stage == OpStage::kConnecting)
      finish_pair_op(evt.bdaddr, evt.status);
    if (connect_op_ && connect_op_->first == evt.bdaddr) {
      auto callback = std::move(connect_op_->second);
      connect_op_.reset();
      if (callback) callback(evt.status);
    }
    return;
  }
  // Unsolicited success: this host never sent Create_Connection for the peer
  // and never accepted a Connection_Request from it. Fabricating an ACL here
  // would desynchronize the host's link table from the controller's (fuzz
  // finding: link-table-agreement). Real stacks drop the event on the floor.
  const bool initiated = (pair_op_ && pair_op_->peer == evt.bdaddr) ||
                         (connect_op_ && connect_op_->first == evt.bdaddr);
  if (!initiated && !was_pending_accept) {
    if (obs_ != nullptr) obs_->count("host.unsolicited_connection_complete");
    BLAP_INFO("host", "%s: ignoring unsolicited Connection_Complete for %s (handle %u)",
              config_.device_name.c_str(), evt.bdaddr.to_string().c_str(),
              static_cast<unsigned>(evt.handle));
    return;
  }
  // A retransmitted/duplicated Connection_Complete for a handle that is
  // already up must not clobber the live ACL's auth/encryption state.
  if (acl_by_handle(evt.handle) != nullptr) return;
  Acl acl;
  acl.handle = evt.handle;
  acl.peer = evt.bdaddr;
  acl.initiator = (pair_op_ && pair_op_->peer == evt.bdaddr) ||
                  (connect_op_ && connect_op_->first == evt.bdaddr);
  acls_[evt.handle] = std::move(acl);
  touch(acls_[evt.handle]);
  if (pair_op_ && pair_op_->peer == evt.bdaddr && pair_op_->stage == OpStage::kConnecting)
    continue_pair_after_connect(acls_[evt.handle]);
  if (connect_op_ && connect_op_->first == evt.bdaddr) {
    auto callback = std::move(connect_op_->second);
    connect_op_.reset();
    if (callback) callback(hci::Status::kSuccess);
  }
}

void HostStack::on_disconnection_complete(const hci::DisconnectionCompleteEvt& evt) {
  Acl* acl = acl_by_handle(evt.handle);
  if (acl == nullptr) return;
  const BdAddr peer = acl->peer;
  acl->idle_timer.cancel();
  l2cap_.on_disconnected(evt.handle);
  hfp_channels_.erase(peer);
  acls_.erase(evt.handle);
  if (pair_op_ && pair_op_->peer == peer) {
    // An in-flight pairing/auth died with the link. The reason is whatever
    // the controller reported (timeout, remote termination...) — real stacks
    // do NOT purge the bond here.
    finish_pair_op(peer, evt.reason == hci::Status::kSuccess
                             ? hci::Status::kConnectionTimeout
                             : evt.reason);
  }
}

void HostStack::on_link_key_request(const hci::LinkKeyRequestEvt& evt) {
  if (hooks_.ignore_link_key_request) {
    // Paper Fig. 9: btu_hcif_link_key_request_evt() call skipped. The
    // controller never gets an answer; the peer's LMP challenge times out.
    ++ignored_link_key_requests_;
    if (obs_ != nullptr) {
      obs_->count("host.link_key_requests_ignored");
      if (obs_->tracing())
        obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kSecurity,
                      "link_key_request_stalled",
                      strfmt("Fig. 9 hook: no reply for %s, peer LMP challenge will time out",
                             evt.bdaddr.to_string().c_str()));
    }
    BLAP_INFO("host", "%s: IGNORING HCI_Link_Key_Request for %s (attack hook)",
              config_.device_name.c_str(), evt.bdaddr.to_string().c_str());
    return;
  }
  if (auto key = security_.link_key_for(evt.bdaddr)) {
    if (obs_ != nullptr) obs_->count("host.link_key_replies");
    hci::LinkKeyRequestReplyCmd cmd;
    cmd.bdaddr = evt.bdaddr;
    cmd.link_key = *key;
    send_command(cmd.encode());  // the plaintext key crosses the HCI here
  } else {
    if (obs_ != nullptr) obs_->count("host.link_key_negative_replies");
    hci::LinkKeyRequestNegativeReplyCmd cmd;
    cmd.bdaddr = evt.bdaddr;
    send_command(cmd.encode());
  }
}

void HostStack::on_pin_code_request(const hci::PinCodeRequestEvt& evt) {
  std::string pin = config_.pin_code;
  if (auto user_pin = user_agent_->on_pin_request(evt.bdaddr)) pin = *user_pin;
  if (pin.empty() || pin.size() > 16) {
    hci::PinCodeRequestNegativeReplyCmd cmd;
    cmd.bdaddr = evt.bdaddr;
    send_command(cmd.encode());
    return;
  }
  hci::PinCodeRequestReplyCmd cmd;
  cmd.bdaddr = evt.bdaddr;
  cmd.pin = pin;
  send_command(cmd.encode());
}

void HostStack::on_link_key_notification(const hci::LinkKeyNotificationEvt& evt) {
  if (obs_ != nullptr) {
    obs_->count("security.bonds_stored");
    if (obs_->tracing())
      obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kSecurity, "bond_stored",
                    strfmt("key for %s (type %u)", evt.bdaddr.to_string().c_str(),
                           static_cast<unsigned>(evt.key_type)));
  }
  BondRecord record;
  record.address = evt.bdaddr;
  record.name = "";  // filled by later name discovery in real stacks
  record.link_key = evt.link_key;
  record.key_type = evt.key_type;
  record.services = {Uuid::from_uuid16(uuid16::kPanu), Uuid::from_uuid16(uuid16::kNap)};
  security_.store_bond(std::move(record));
}

void HostStack::on_io_capability_request(const hci::IoCapabilityRequestEvt& evt) {
  hci::IoCapabilityRequestReplyCmd cmd;
  cmd.bdaddr = evt.bdaddr;
  cmd.io_capability = config_.io_capability;
  cmd.authentication_requirements = config_.auth_requirements;
  send_command(cmd.encode());
}

void HostStack::on_io_capability_response(const hci::IoCapabilityResponseEvt& evt) {
  Acl* acl = acl_by_peer(evt.bdaddr);
  if (acl == nullptr) return;
  acl->peer_io = evt.io_capability;
  // §VII-B detector: we initiated the pairing, the peer initiated the
  // *connection*, and that connection initiator is NoInputNoOutput — the
  // page blocking + SSP downgrade signature. Drop the pairing.
  // blap-lint: spec-ok — this IS the §VII-B detector; it inspects the raw IO
  // capability by design rather than routing through the association model.
  if (config_.detect_page_blocking && acl->is_pairing_initiator && !acl->initiator &&
      evt.io_capability == hci::IoCapability::kNoInputNoOutput) {
    ++detected_page_blocking_count_;
    BLAP_WARN("host", "%s: page blocking signature on %s — aborting pairing",
              config_.device_name.c_str(), evt.bdaddr.to_string().c_str());
    const BdAddr peer = acl->peer;
    disconnect(peer, hci::Status::kPairingNotAllowed);
    finish_pair_op(peer, hci::Status::kPairingNotAllowed);
  }
}

void HostStack::on_user_confirmation_request(const hci::UserConfirmationRequestEvt& evt) {
  Acl* acl = acl_by_peer(evt.bdaddr);
  const bool is_initiator = acl != nullptr && acl->is_pairing_initiator;
  const hci::IoCapability peer_io =
      acl != nullptr ? acl->peer_io : hci::IoCapability::kDisplayYesNo;

  const ConfirmationBehavior behavior =
      confirmation_behavior(config_.version, config_.io_capability, peer_io, is_initiator);

  PopupRecord record;
  record.peer = evt.bdaddr;
  record.at = scheduler_.now();

  bool accept = true;
  if (behavior.automatic_confirmation || !behavior.shows_popup) {
    record.shown_to_user = false;
    accept = true;
  } else {
    record.shown_to_user = true;
    if (behavior.shows_numeric_value) record.numeric_value = evt.numeric_value;
    accept = user_agent_->on_pairing_popup(evt.bdaddr, record.numeric_value);
  }
  record.accepted = accept;
  popups_.push_back(record);

  if (accept) {
    hci::UserConfirmationRequestReplyCmd cmd;
    cmd.bdaddr = evt.bdaddr;
    send_command(cmd.encode());
  } else {
    hci::UserConfirmationRequestNegativeReplyCmd cmd;
    cmd.bdaddr = evt.bdaddr;
    send_command(cmd.encode());
  }
}

void HostStack::on_simple_pairing_complete(const hci::SimplePairingCompleteEvt& evt) {
  pairing_events_.emplace_back(evt.bdaddr, evt.status == hci::Status::kSuccess);
}

void HostStack::on_authentication_complete(const hci::AuthenticationCompleteEvt& evt) {
  Acl* acl = acl_by_handle(evt.handle);
  const BdAddr peer = acl != nullptr ? acl->peer : BdAddr{};
  if (evt.status == hci::Status::kSuccess) {
    if (acl != nullptr) {
      acl->authenticated = true;
      touch(*acl);
    }
    if (pair_op_ && pair_op_->peer == peer && pair_op_->stage == OpStage::kAuthenticating) {
      pair_op_->stage = OpStage::kEncrypting;
      send_command(hci::SetConnectionEncryptionCmd{evt.handle, 0x01}.encode());
    }
    return;
  }
  // Bond-purge policy: only cryptographic failures invalidate the key.
  if (obs_ != nullptr) {
    obs_->count("security.auth_failures");
    if (obs_->tracing())
      obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kSecurity, "auth_failed",
                    strfmt("%s: %s", peer.to_string().c_str(), to_string(evt.status)));
  }
  if (acl != nullptr) security_.on_authentication_result(peer, evt.status);
  if (pair_op_ && acl != nullptr && pair_op_->peer == peer) finish_pair_op(peer, evt.status);
}

void HostStack::on_encryption_change(const hci::EncryptionChangeEvt& evt) {
  Acl* acl = acl_by_handle(evt.handle);
  if (acl == nullptr) return;
  if (evt.status == hci::Status::kSuccess && evt.encryption_enabled) {
    acl->encrypted = true;
    acl->authenticated = true;  // encryption start implies authentication
    touch(*acl);
  }
  if (pair_op_ && pair_op_->peer == acl->peer && pair_op_->stage == OpStage::kEncrypting) {
    if (pair_op_->profile != ProfileTarget::kNone) {
      start_profile_channel(acl->peer);
    } else {
      finish_pair_op(acl->peer, evt.status);
    }
  }
}

void HostStack::on_inquiry_result(const hci::InquiryResultEvt& evt) {
  if (!discovery_callback_) return;
  for (const auto& existing : discovery_results_)
    if (existing.address == evt.bdaddr) return;
  discovery_results_.push_back(Discovered{evt.bdaddr, evt.class_of_device, "", 0});
}

void HostStack::on_extended_inquiry_result(const hci::ExtendedInquiryResultEvt& evt) {
  if (!discovery_callback_) return;
  for (auto& existing : discovery_results_) {
    if (existing.address == evt.bdaddr) {
      if (existing.name.empty()) existing.name = evt.name;  // upgrade in place
      return;
    }
  }
  discovery_results_.push_back(Discovered{evt.bdaddr, evt.class_of_device, evt.name, evt.rssi});
}

void HostStack::on_inquiry_complete() {
  if (!discovery_callback_) return;
  auto callback = std::move(*discovery_callback_);
  discovery_callback_.reset();
  callback(discovery_results_);
}

void HostStack::finish_pair_op(const BdAddr& peer, hci::Status status) {
  if (!pair_op_ || !(pair_op_->peer == peer)) return;
  PairOp op = std::move(*pair_op_);
  pair_op_.reset();
  op.watchdog.cancel();
  if (status == hci::Status::kSuccess) {
    security_.note_pairing_success(peer);
  } else if (config_.fault_recovery) {
    if (auto backoff = security_.note_pairing_failure(peer, status)) {
      // Transient channel failure with retry budget left: re-run the whole
      // operation after an exponential backoff instead of surfacing the
      // error. The caller's callback fires once, with the final outcome.
      if (obs_ != nullptr) {
        obs_->count("host.pairing_retries");
        if (obs_->tracing())
          obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kHost, "pair_retry",
                        strfmt("%s after %s, backoff %llu us", peer.to_string().c_str(),
                               to_string(status), static_cast<unsigned long long>(*backoff)));
      }
      mark_degraded(peer, to_string(status));
      // The op travels by value; retry_pair_op re-validates the pair_op_
      // slot when the backoff fires.
      scheduler_.schedule_in(*backoff, [this, op = std::move(op)]() mutable {
        retry_pair_op(std::move(op));
      });
      return;
    }
  }
  dispatch_pair_result(std::move(op), status);
}

void HostStack::dispatch_pair_result(PairOp op, hci::Status status) {
  if (obs_ != nullptr && op.obs_span != 0)
    obs_->end_span(scheduler_.now(), op.obs_span, to_string(status));
  switch (op.profile) {
    case ProfileTarget::kPan:
      if (op.pan_callback) op.pan_callback(status == hci::Status::kSuccess);
      break;
    case ProfileTarget::kPbap:
      if (op.pbap_callback) op.pbap_callback(std::nullopt);  // never reached the pull
      break;
    case ProfileTarget::kHfp:
      if (op.hfp_callback) op.hfp_callback(false);
      break;
    case ProfileTarget::kMap:
      map_read_.reset();
      if (op.map_callback) op.map_callback(std::nullopt);
      break;
    case ProfileTarget::kNone:
      if (op.callback) op.callback(status);
      break;
  }
}

bool HostStack::quiescent() const {
  return !pair_op_.has_value() && !connect_op_.has_value() &&
         !discovery_callback_.has_value() && !name_request_.has_value() &&
         !map_read_.has_value() && !ploc_active_ && ploc_queue_.empty() &&
         l2cap_.quiescent() && sdp_client_.quiescent() && pan_.quiescent() &&
         pbap_.quiescent() && map_.quiescent();
}

void HostStack::save_state(state::StateWriter& w) const {
  // Config (trials mutate io_capability, hci_dump_available, simple_pairing,
  // fault_recovery, ... — all of it is restored).
  w.str(config_.device_name);
  w.u8(static_cast<std::uint8_t>(config_.version));
  w.u8(static_cast<std::uint8_t>(config_.io_capability));
  w.u8(config_.auth_requirements);
  w.boolean(config_.auto_accept_connections);
  w.u64(config_.acl_idle_timeout);
  w.boolean(config_.hci_dump_available);
  w.boolean(config_.detect_page_blocking);
  w.str(config_.pin_code);
  w.boolean(config_.simple_pairing);
  w.boolean(config_.fault_recovery);
  w.u64(config_.pair_op_watchdog);

  w.fixed(own_address_.bytes());
  w.boolean(hooks_.ignore_link_key_request);
  w.u64(hooks_.ploc_delay);
  w.boolean(hooks_.ignore_connection_request);

  security_.save_state(w);
  l2cap_.save_state(w);
  sdp_server_.save_state(w);
  pan_.save_state(w);
  pbap_.save_state(w);
  hfp_.save_state(w);
  map_.save_state(w);

  w.u64(hfp_channels_.size());
  for (const auto& [peer, channel] : hfp_channels_) {
    w.fixed(peer.bytes());
    w.u16(channel.acl_handle);
    w.u16(channel.local_cid);
    w.u16(channel.remote_cid);
    w.u16(channel.psm);
  }

  w.boolean(map_read_.has_value());
  if (map_read_.has_value()) {
    w.u16(map_read_->channel.acl_handle);
    w.u16(map_read_->channel.local_cid);
    w.u16(map_read_->channel.remote_cid);
    w.u16(map_read_->channel.psm);
    w.u64(map_read_->handles.size());
    for (const std::uint16_t handle : map_read_->handles) w.u16(handle);
    w.u64(map_read_->next_index);
    w.u64(map_read_->bodies.size());
    for (const std::string& body : map_read_->bodies) w.str(body);
  }

  w.boolean(user_agent_ == &default_user_);

  w.u64(acls_.size());
  for (const auto& [handle, acl] : acls_) {
    w.u16(acl.handle);
    w.fixed(acl.peer.bytes());
    w.boolean(acl.initiator);
    w.boolean(acl.authenticated);
    w.boolean(acl.encrypted);
    w.u8(static_cast<std::uint8_t>(acl.peer_io));
    w.boolean(acl.is_pairing_initiator);
    w.boolean(acl.degraded);
    w.u64(acl.last_activity);
  }

  w.u32(static_cast<std::uint32_t>(detected_page_blocking_count_));
  w.u64(discovery_results_.size());
  for (const Discovered& found : discovery_results_) {
    w.fixed(found.address.bytes());
    w.u32(found.class_of_device.raw());
    w.str(found.name);
    w.u8(static_cast<std::uint8_t>(found.rssi));
  }

  w.boolean(ploc_active_);
  w.u64(ploc_queue_.size());
  for (const hci::HciPacket& packet : ploc_queue_) {
    w.u8(static_cast<std::uint8_t>(packet.type));
    w.bytes(packet.payload);
  }

  w.boolean(snoop_enabled_);
  snoop_.save_state(w);

  w.u32(static_cast<std::uint32_t>(ignored_link_key_requests_));
  w.u64(popups_.size());
  for (const PopupRecord& popup : popups_) {
    w.fixed(popup.peer.bytes());
    w.boolean(popup.shown_to_user);
    w.boolean(popup.numeric_value.has_value());
    if (popup.numeric_value.has_value()) w.u32(*popup.numeric_value);
    w.boolean(popup.accepted);
    w.u64(popup.at);
  }
  w.u64(pairing_events_.size());
  for (const auto& [peer, success] : pairing_events_) {
    w.fixed(peer.bytes());
    w.boolean(success);
  }
}

void HostStack::load_state(state::StateReader& r, state::RestoreMode mode) {
  config_.device_name = r.str();
  config_.version = static_cast<BtVersion>(r.u8());
  config_.io_capability = static_cast<hci::IoCapability>(r.u8());
  config_.auth_requirements = r.u8();
  config_.auto_accept_connections = r.boolean();
  config_.acl_idle_timeout = r.u64();
  config_.hci_dump_available = r.boolean();
  config_.detect_page_blocking = r.boolean();
  config_.pin_code = r.str();
  config_.simple_pairing = r.boolean();
  config_.fault_recovery = r.boolean();
  config_.pair_op_watchdog = r.u64();

  own_address_ = BdAddr(r.fixed<BdAddr::kSize>());
  hooks_.ignore_link_key_request = r.boolean();
  hooks_.ploc_delay = r.u64();
  hooks_.ignore_connection_request = r.boolean();

  security_.load_state(r);
  l2cap_.load_state(r, mode);
  sdp_server_.load_state(r);
  pan_.load_state(r);
  pbap_.load_state(r);
  hfp_.load_state(r);
  map_.load_state(r);

  hfp_channels_.clear();
  const std::uint64_t hfp_count = r.u64();
  for (std::uint64_t i = 0; i < hfp_count && r.ok(); ++i) {
    const BdAddr peer(r.fixed<BdAddr::kSize>());
    L2capChannel channel;
    channel.acl_handle = r.u16();
    channel.local_cid = r.u16();
    channel.remote_cid = r.u16();
    channel.psm = r.u16();
    hfp_channels_.emplace(peer, channel);
  }

  map_read_.reset();
  if (r.boolean()) {
    MapReadState read;
    read.channel.acl_handle = r.u16();
    read.channel.local_cid = r.u16();
    read.channel.remote_cid = r.u16();
    read.channel.psm = r.u16();
    const std::uint64_t handle_count = r.u64();
    for (std::uint64_t i = 0; i < handle_count && r.ok(); ++i)
      read.handles.push_back(r.u16());
    read.next_index = static_cast<std::size_t>(r.u64());
    const std::uint64_t body_count = r.u64();
    for (std::uint64_t i = 0; i < body_count && r.ok(); ++i)
      read.bodies.push_back(r.str());
    map_read_ = std::move(read);
  }

  const bool default_agent = r.boolean();
  if (mode == state::RestoreMode::kRewind && default_agent) user_agent_ = &default_user_;

  // ACLs: in kInPlace mode the armed idle timers keep their handles; in
  // kRewind mode every handle is stale by construction (the scheduler was
  // rewound), so a default EventHandle is the correct restored value.
  std::map<hci::ConnectionHandle, Acl> restored;
  const std::uint64_t acl_count = r.u64();
  for (std::uint64_t i = 0; i < acl_count && r.ok(); ++i) {
    Acl acl;
    acl.handle = r.u16();
    acl.peer = BdAddr(r.fixed<BdAddr::kSize>());
    acl.initiator = r.boolean();
    acl.authenticated = r.boolean();
    acl.encrypted = r.boolean();
    acl.peer_io = static_cast<hci::IoCapability>(r.u8());
    acl.is_pairing_initiator = r.boolean();
    acl.degraded = r.boolean();
    acl.last_activity = r.u64();
    if (mode == state::RestoreMode::kInPlace) {
      if (const auto it = acls_.find(acl.handle); it != acls_.end())
        acl.idle_timer = it->second.idle_timer;
    }
    restored.emplace(acl.handle, std::move(acl));
  }
  if (r.ok()) acls_ = std::move(restored);

  detected_page_blocking_count_ = static_cast<int>(r.u32());
  discovery_results_.clear();
  const std::uint64_t discovered = r.u64();
  for (std::uint64_t i = 0; i < discovered && r.ok(); ++i) {
    Discovered found;
    found.address = BdAddr(r.fixed<BdAddr::kSize>());
    found.class_of_device = ClassOfDevice(r.u32());
    found.name = r.str();
    found.rssi = static_cast<std::int8_t>(r.u8());
    discovery_results_.push_back(std::move(found));
  }

  ploc_active_ = r.boolean();
  ploc_queue_.clear();
  const std::uint64_t queued = r.u64();
  for (std::uint64_t i = 0; i < queued && r.ok(); ++i) {
    hci::HciPacket packet;
    packet.type = static_cast<hci::PacketType>(r.u8());
    packet.payload = r.bytes();
    ploc_queue_.push_back(std::move(packet));
  }

  snoop_enabled_ = r.boolean();
  snoop_.load_state(r, mode);

  ignored_link_key_requests_ = static_cast<int>(r.u32());
  popups_.clear();
  const std::uint64_t popup_count = r.u64();
  for (std::uint64_t i = 0; i < popup_count && r.ok(); ++i) {
    PopupRecord popup;
    popup.peer = BdAddr(r.fixed<BdAddr::kSize>());
    popup.shown_to_user = r.boolean();
    if (r.boolean()) popup.numeric_value = r.u32();
    popup.accepted = r.boolean();
    popup.at = r.u64();
    popups_.push_back(popup);
  }
  pairing_events_.clear();
  const std::uint64_t event_count = r.u64();
  for (std::uint64_t i = 0; i < event_count && r.ok(); ++i) {
    const BdAddr peer(r.fixed<BdAddr::kSize>());
    pairing_events_.emplace_back(peer, r.boolean());
  }

  if (mode == state::RestoreMode::kRewind) {
    // Callback-holding residue from the aborted trial: a strict capture
    // point had none of it, so dropping it restores the captured state.
    pair_op_.reset();
    connect_op_.reset();
    pending_accepts_.clear();
    discovery_callback_.reset();
    name_request_.reset();
    sdp_client_.reset_pending();
    pan_.reset_pending();
    pbap_.reset_pending();
    map_.reset_pending();
    obs_ploc_span_ = 0;
  }
}

}  // namespace blap::host
