#include "host/pan.hpp"

namespace blap::host {

namespace {
constexpr std::uint8_t kSetupRequest = 0x01;
constexpr std::uint8_t kSetupResponse = 0x02;
}  // namespace

void PanProfile::attach_server(L2cap& l2cap) {
  server_l2cap_ = &l2cap;
  L2cap::Service service;
  service.requires_authentication = true;  // the profile's GAP security rule
  service.on_data = [this, &l2cap](const L2capChannel& channel, BytesView data) {
    handle_server(l2cap, channel, data);
  };
  l2cap.register_service(psm::kBnep, std::move(service));
}

bool PanProfile::handle_server(L2cap& l2cap, const L2capChannel& channel, BytesView data) {
  ByteReader r(data);
  auto code = r.u8();
  if (!code || *code != kSetupRequest) return false;
  ++server_sessions_;
  ByteWriter w;
  w.u8(kSetupResponse).u8(0x00);
  l2cap.send(channel, w.data());
  return true;
}

void PanProfile::setup(L2cap& l2cap, const L2capChannel& channel) {
  ByteWriter w;
  w.u8(kSetupRequest).u8(0x00);  // PANU connecting to a NAP
  l2cap.send(channel, w.data());
}

void PanProfile::on_client_data(BytesView payload) {
  ByteReader r(payload);
  auto code = r.u8();
  auto status = r.u8();
  if (!code || *code != kSetupResponse || !status) return;
  if (client_callback_) {
    auto cb = std::move(client_callback_);
    client_callback_ = nullptr;
    cb(*status == 0x00);
  }
}

}  // namespace blap::host
