// hfp.hpp — Hands-Free Profile (simplified) over L2CAP.
//
// HFP is what makes a car-kit a car-kit: the accessory C in the paper's
// system model is "car-kits, headset devices" speaking exactly this profile,
// and §IV promises a stolen link key leaks "phone call conversations". BLAP
// models HFP as:
//   * a control channel carrying AT-style commands (RING, ATA, AT+CHUP), and
//   * an audio stream of voice frames flowing both ways during a call.
//
// Simplification: real HFP runs AT commands over RFCOMM with audio on SCO
// links; BLAP carries both over L2CAP channels (PSM 0x1005). Audio frames
// ride the encrypted ACL path, so a recorded call is ciphertext on the air —
// until a stolen link key replays it (core/air_analysis).
//
// Control messages : 'A' 'T' | command bytes          (either direction)
// Audio frames     : 0xA0 | seq u16 | voice samples   (during a call)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "host/l2cap.hpp"

namespace blap::host {

namespace psm_ext2 {
inline constexpr std::uint16_t kHfp = 0x1005;
}

class HfpProfile {
 public:
  struct AudioFrame {
    std::uint16_t sequence = 0;
    Bytes samples;
  };

  /// Gateway (phone) side state.
  [[nodiscard]] bool call_active() const { return call_active_; }
  [[nodiscard]] const std::vector<AudioFrame>& received_audio() const { return received_; }
  [[nodiscard]] const std::vector<std::string>& at_log() const { return at_log_; }

  /// Handle an inbound HFP message (server or peer side). Returns false for
  /// bytes that are not HFP traffic.
  bool handle(L2cap& l2cap, const L2capChannel& channel, BytesView data);

  /// Send an AT command on the channel ("ATA" answers, "AT+CHUP" hangs up,
  /// "RING" alerts).
  void send_at(L2cap& l2cap, const L2capChannel& channel, const std::string& command);

  /// Send one audio frame (call must be active on the receiving side for it
  /// to be recorded).
  void send_audio(L2cap& l2cap, const L2capChannel& channel, BytesView samples);

  void set_call_active(bool active) { call_active_ = active; }
  void clear() {
    received_.clear();
    at_log_.clear();
  }

  /// Snapshot support: the full gateway-side state (call flag, tx sequence,
  /// received audio, AT log). HFP holds no completion callbacks.
  void save_state(state::StateWriter& w) const {
    w.boolean(call_active_);
    w.u16(tx_sequence_);
    w.u64(received_.size());
    for (const AudioFrame& frame : received_) {
      w.u16(frame.sequence);
      w.bytes(frame.samples);
    }
    w.u64(at_log_.size());
    for (const std::string& line : at_log_) w.str(line);
  }
  void load_state(state::StateReader& r) {
    call_active_ = r.boolean();
    tx_sequence_ = r.u16();
    received_.clear();
    const std::uint64_t frames = r.u64();
    for (std::uint64_t i = 0; i < frames && r.ok(); ++i) {
      AudioFrame frame;
      frame.sequence = r.u16();
      frame.samples = r.bytes();
      received_.push_back(std::move(frame));
    }
    at_log_.clear();
    const std::uint64_t lines = r.u64();
    for (std::uint64_t i = 0; i < lines && r.ok(); ++i) at_log_.push_back(r.str());
  }

 private:
  bool call_active_ = false;
  std::uint16_t tx_sequence_ = 0;
  std::vector<AudioFrame> received_;
  std::vector<std::string> at_log_;
};

}  // namespace blap::host
