// pan.hpp — the PAN (Bluetooth tethering) profile over BNEP / L2CAP 0x000F.
//
// PAN is the profile the paper uses to *validate extracted link keys*
// (§VI-B1): install a fake bond containing the key, open a PAN connection to
// the victim, and observe whether LMP authentication succeeds without a new
// pairing. BLAP reproduces that exact probe: PAN requires authentication, so
// connecting triggers the bonded-device authentication path.
//
// BNEP setup on the channel:
//   request : 0x01 | role u8 (0x00 PANU -> NAP)
//   response: 0x02 | status u8 (0x00 success)
#pragma once

#include <functional>

#include "host/l2cap.hpp"

namespace blap::host {

class PanProfile {
 public:
  using Callback = std::function<void(bool connected)>;

  /// Register the NAP (server) side on L2CAP. Channels on this PSM require
  /// authentication — the host's auth oracle gates them.
  void attach_server(L2cap& l2cap);

  /// Handle an inbound BNEP message if it is a setup request. Returns false
  /// when it is not a request (a response for the client role instead).
  bool handle_server(L2cap& l2cap, const L2capChannel& channel, BytesView data);

  /// Client side: run BNEP setup on an already-opened L2CAP channel.
  void setup(L2cap& l2cap, const L2capChannel& channel);

  /// Feed data arriving on a PAN channel we initiated.
  void on_client_data(BytesView payload);

  void set_client_callback(Callback callback) { client_callback_ = std::move(callback); }

  [[nodiscard]] bool server_session_active() const { return server_sessions_ > 0; }

  /// Snapshot support. The client callback is not serializable: quiescent()
  /// is the strict-capture precondition, reset_pending() the kRewind
  /// residue cleanup.
  [[nodiscard]] bool quiescent() const { return !client_callback_; }
  void reset_pending() { client_callback_ = nullptr; }
  void save_state(state::StateWriter& w) const {
    w.u32(static_cast<std::uint32_t>(server_sessions_));
  }
  void load_state(state::StateReader& r) {
    server_sessions_ = static_cast<int>(r.u32());
  }

 private:
  Callback client_callback_;
  L2cap* server_l2cap_ = nullptr;
  int server_sessions_ = 0;
};

}  // namespace blap::host
