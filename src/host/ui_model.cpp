#include "host/ui_model.hpp"

namespace blap::host {

const char* to_string(BtVersion version) {
  switch (version) {
    case BtVersion::kV4_2: return "4.2";
    case BtVersion::kV5_0: return "5.0";
  }
  return "?";
}

const char* to_string(AssociationModel model) {
  switch (model) {
    case AssociationModel::kNumericComparison: return "Numeric Comparison";
    case AssociationModel::kJustWorks: return "Just Works";
    case AssociationModel::kPasskeyEntry: return "Passkey Entry";
    case AssociationModel::kOutOfBand: return "Out of Band";
  }
  return "?";
}

AssociationModel select_association_model(hci::IoCapability initiator,
                                          hci::IoCapability responder) {
  using IO = hci::IoCapability;
  // Spec Vol 3, Part C, Table 5.7 (OOB authentication data not present).
  if (initiator == IO::kNoInputNoOutput || responder == IO::kNoInputNoOutput)
    return AssociationModel::kJustWorks;
  const bool init_kb = initiator == IO::kKeyboardOnly;
  const bool resp_kb = responder == IO::kKeyboardOnly;
  if (init_kb || resp_kb) return AssociationModel::kPasskeyEntry;
  // Remaining capabilities are DisplayOnly / DisplayYesNo.
  if (initiator == IO::kDisplayYesNo && responder == IO::kDisplayYesNo)
    return AssociationModel::kNumericComparison;
  // A DisplayOnly endpoint cannot confirm: automatic confirmation on it.
  return AssociationModel::kJustWorks;
}

ConfirmationBehavior confirmation_behavior(BtVersion version, hci::IoCapability local,
                                           hci::IoCapability remote,
                                           bool local_is_initiator) {
  using IO = hci::IoCapability;
  ConfirmationBehavior behavior;

  if (local == IO::kNoInputNoOutput || local == IO::kKeyboardOnly) {
    // No display: nothing to show; the stack confirms automatically.
    behavior.automatic_confirmation = true;
    return behavior;
  }

  const AssociationModel model = select_association_model(
      local_is_initiator ? local : remote, local_is_initiator ? remote : local);

  if (model == AssociationModel::kNumericComparison) {
    behavior.shows_popup = true;
    behavior.shows_numeric_value = true;
    return behavior;
  }

  // Just Works on a display-capable device: the version regimes differ.
  if (version == BtVersion::kV4_2) {
    if (local_is_initiator) {
      // Most implementations silently confirm when initiating (Fig. 7a).
      behavior.automatic_confirmation = true;
    } else {
      // Responders prompt to prevent silent pairing.
      behavior.shows_popup = true;
    }
  } else {
    // v5.0+: a Yes/No popup is mandated — but with no comparison value,
    // so the user cannot distinguish the legitimate device from a spoof.
    behavior.shows_popup = true;
  }
  return behavior;
}

std::string describe_cell(BtVersion version, hci::IoCapability initiator,
                          hci::IoCapability responder) {
  const AssociationModel model = select_association_model(initiator, responder);
  if (model == AssociationModel::kPasskeyEntry) return "Passkey Entry";
  if (model == AssociationModel::kNumericComparison)
    return "Numeric Comparison: Both Display, Both Confirm.";

  // Just Works variants, phrased as in the paper's Fig. 7. The spec table is
  // capability-driven: a device without display+input confirms automatically;
  // the v5.0 regime adds the mandated Yes/No popup note on the other side.
  using IO = hci::IoCapability;
  const bool init_auto = initiator == IO::kNoInputNoOutput || initiator == IO::kDisplayOnly;
  const bool resp_auto = responder == IO::kNoInputNoOutput || responder == IO::kDisplayOnly;
  if (init_auto && resp_auto)
    return "Numeric Comparison with automatic confirmation on both devices.";
  if (init_auto && !resp_auto) {
    if (version == BtVersion::kV5_0)
      return "Numeric Comparison with automatic confirmation on device A only and Yes/No "
             "confirmation whether to pair on device B. Device B does not show the "
             "confirmation value.";
    return "Numeric Comparison with automatic confirmation on device A only.";
  }
  if (!init_auto && resp_auto) {
    if (version == BtVersion::kV5_0)
      return "Numeric Comparison with automatic confirmation on device B only and Yes/No "
             "confirmation on whether to pair on device A. Device A does not show the "
             "confirmation value.";
    return "Numeric Comparison with automatic confirmation on device B only.";
  }
  return "Numeric Comparison with Yes/No confirmation on both devices.";
}

}  // namespace blap::host
