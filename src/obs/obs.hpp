// obs.hpp — virtual-time tracing and metrics for the simulator.
//
// BLAP's attacks are timing attacks: link-key extraction hinges on *when*
// the plaintext key crosses the HCI, page blocking on *who wins the paging
// race by how many microseconds*. Leveled logs cannot answer either
// question, so this subsystem records the protocol timeline itself:
//
//   * TraceRecorder — a bounded ring of structured events
//     {virtual_time, device, layer, kind, name, args} with span begin/end
//     pairs for protocol phases (inquiry, paging race, LMP auth, SSP,
//     encryption start, attack steps). Exports Chrome trace-event JSON
//     (load it in Perfetto/chrome://tracing; virtual µs as `ts`, one
//     thread lane per device) and a compact text timeline. Both emits are
//     pure functions of the recorded events — byte-identical across
//     re-runs and across BLAP_JOBS counts.
//
//   * MetricsRegistry — named counters, max-gauges and log2-bucketed
//     virtual-time histograms (packets per layer, page timeouts, HCI
//     commands by opcode group, scheduler queue depth/dispatch counts).
//     Snapshots are mergeable with deterministic results regardless of
//     merge grouping, so campaign workers can aggregate per-trial
//     snapshots into one bit-stable JSON block.
//
//   * Observer — the per-Simulation façade components talk to. Everything
//     is run-time-off by default: an uninstrumented simulation holds a
//     null Observer pointer and every instrumentation site costs exactly
//     one branch (`if (obs_)`). The Observer also implements SchedulerHook
//     to count dispatched events and watch queue depth.
//
// Determinism contract: all timestamps are virtual (SimTime), device ids
// are interned in first-use order on the single simulation thread, map
// keys are emitted in sorted order, and no wall-clock value ever reaches
// an emit.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/scheduler.hpp"

namespace blap::obs {

/// Stack layer an event belongs to; becomes the Chrome trace `cat`.
enum class Layer : std::uint8_t {
  kRadio,
  kScheduler,
  kController,
  kLmp,
  kHci,
  kHost,
  kSecurity,
  kAttack,
};

[[nodiscard]] const char* to_string(Layer layer);

/// Escape a string for embedding inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

/// One recorded event. `phase` is 'i' (instant), 'b' (span begin) or
/// 'e' (span end); begin/end pairs share a nonzero `span_id`.
struct TraceEvent {
  SimTime ts = 0;
  std::uint64_t seq = 0;  // insertion order, breaks timestamp ties
  char phase = 'i';
  Layer layer = Layer::kHost;
  std::uint32_t device = 0;  // interned device id (trace tid)
  std::uint64_t span_id = 0;
  std::string name;
  std::string args;  // free-form detail, emitted under args.detail
};

/// Bounded ring buffer of TraceEvents. When full the oldest event is
/// dropped (and counted), so long scenarios keep the most recent window —
/// the part that explains the outcome.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  /// Intern a device name; returns its stable trace tid. Names (not
  /// BD_ADDRs) identify devices because the attacks spoof addresses —
  /// mid-trace the attacker and the accessory share an address, but each
  /// keeps its name.
  std::uint32_t intern_device(std::string_view name);
  [[nodiscard]] const std::vector<std::string>& devices() const { return devices_; }

  void instant(SimTime ts, std::uint32_t device, Layer layer, std::string name,
               std::string detail = {});
  /// Open a span; returns its id (never 0).
  std::uint64_t begin_span(SimTime ts, std::uint32_t device, Layer layer,
                           std::string name, std::string detail = {});
  /// Close span `id`. `ts` may lie in the virtual future of the most recent
  /// event (e.g. a paging-race candidate whose scan-window latency is known
  /// at page start); exports sort by timestamp. Unknown ids are ignored.
  void end_span(SimTime ts, std::uint64_t id, std::string detail = {});

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const std::deque<TraceEvent>& events() const { return events_; }

  /// Chrome trace-event JSON (the `{"traceEvents":[...]}` object form).
  /// Spans with both ends retained become complete ("X") slices; a span
  /// still open at export becomes a zero-duration slice flagged unclosed.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Compact human-readable timeline, one event per line, time-ordered.
  [[nodiscard]] std::string to_text() const;

  /// Snapshot-fork support: drop all recorded events and reset the
  /// seq/span/dropped counters to a just-constructed state. Interned
  /// devices are kept — they were interned in wiring order, which a
  /// rebuilt simulation reproduces identically, and cached tids in the
  /// stack stay valid.
  void reset() {
    events_.clear();
    open_.clear();
    next_seq_ = 0;
    next_span_ = 1;
    dropped_ = 0;
  }

 private:
  struct OpenSpan {
    Layer layer = Layer::kHost;
    std::uint32_t device = 0;
    std::string name;
  };

  void push(TraceEvent event);

  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_span_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> devices_;
  // Lookup-only (find/erase by span id, never iterated), so hash order can't
  // reach the exports — events_ is serialized in recorded order. blap-lint D2
  // flags iteration, not lookups; keep unordered for O(1) span close.
  std::unordered_map<std::uint64_t, OpenSpan> open_;
};

/// Log2-bucketed histogram over unsigned 64-bit samples (virtual-time
/// durations, queue depths). Bucket index of a sample v is bit_width(v),
/// so bucket b counts samples in [2^(b-1), 2^b). Bucket-wise merge makes
/// aggregation order-independent and therefore worker-count-independent.
struct HistData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, 65> buckets{};

  void observe(std::uint64_t value);
  void merge(const HistData& other);
};

/// A frozen, mergeable view of a trial's metrics. Keys are sorted
/// (std::map) so to_json() is deterministic; merging sums counters and
/// histogram buckets and takes the max of gauges — all order-independent.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, std::uint64_t, std::less<>> gauges;
  std::map<std::string, HistData, std::less<>> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  void merge_from(const MetricsSnapshot& other);
  /// Deterministic JSON object. Every line is prefixed with `indent`; the
  /// opening brace is not (so the block can follow a `"metrics": ` key).
  [[nodiscard]] std::string to_json(const std::string& indent = {}) const;
};

/// Live metric store. add/gauge_max/observe take string_view names (no
/// allocation on the hot path once a key exists).
class MetricsRegistry {
 public:
  void add(std::string_view name, std::uint64_t delta = 1);
  void gauge_max(std::string_view name, std::uint64_t value);
  void observe(std::string_view name, std::uint64_t value);

  [[nodiscard]] const MetricsSnapshot& data() const { return data_; }
  [[nodiscard]] MetricsSnapshot snapshot() const { return data_; }
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  /// Snapshot-fork support: zero every counter, gauge and histogram.
  void reset() { data_ = MetricsSnapshot{}; }

 private:
  MetricsSnapshot data_;
};

struct ObsConfig {
  bool tracing = false;
  bool metrics = false;
  std::size_t trace_capacity = 1 << 16;
};

/// Per-Simulation observability façade. Components hold a raw
/// `Observer*` (null when observability is off) and guard each site with
/// one branch. The convenience methods below additionally no-op when the
/// corresponding half (tracing / metrics) is disabled, so callers that
/// already paid the null check don't need to distinguish the two.
class Observer final : public SchedulerHook {
 public:
  explicit Observer(ObsConfig config = {});

  [[nodiscard]] bool tracing() const { return config_.tracing; }
  [[nodiscard]] bool metrics_on() const { return config_.metrics; }
  [[nodiscard]] const ObsConfig& config() const { return config_; }

  [[nodiscard]] TraceRecorder& recorder() { return trace_; }
  [[nodiscard]] const TraceRecorder& recorder() const { return trace_; }
  [[nodiscard]] MetricsRegistry& registry() { return metrics_; }

  /// Intern a device name for tracing (valid even while tracing is off,
  /// so wiring code can cache tids unconditionally).
  std::uint32_t device_tid(std::string_view name) { return trace_.intern_device(name); }

  // --- metrics convenience --------------------------------------------------
  void count(std::string_view name, std::uint64_t delta = 1) {
    if (config_.metrics) metrics_.add(name, delta);
  }
  void gauge_max(std::string_view name, std::uint64_t value) {
    if (config_.metrics) metrics_.gauge_max(name, value);
  }
  void observe(std::string_view name, std::uint64_t value) {
    if (config_.metrics) metrics_.observe(name, value);
  }

  // --- tracing convenience --------------------------------------------------
  void instant(SimTime ts, std::uint32_t device, Layer layer, std::string name,
               std::string detail = {}) {
    if (config_.tracing)
      trace_.instant(ts, device, layer, std::move(name), std::move(detail));
  }
  std::uint64_t begin_span(SimTime ts, std::uint32_t device, Layer layer,
                           std::string name, std::string detail = {}) {
    if (!config_.tracing) return 0;
    return trace_.begin_span(ts, device, layer, std::move(name), std::move(detail));
  }
  void end_span(SimTime ts, std::uint64_t id, std::string detail = {}) {
    if (config_.tracing && id != 0) trace_.end_span(ts, id, std::move(detail));
  }
  /// Record a span whose end time is already known (paging-race windows).
  void span(SimTime begin, SimTime end, std::uint32_t device, Layer layer,
            std::string name, std::string detail = {}) {
    if (!config_.tracing) return;
    const std::uint64_t id =
        trace_.begin_span(begin, device, layer, std::move(name), std::move(detail));
    trace_.end_span(end, id);
  }

  // --- SchedulerHook --------------------------------------------------------
  void on_dispatch(SimTime now, std::size_t queue_depth) override {
    (void)now;
    ++dispatched_;
    if (queue_depth > max_queue_depth_) max_queue_depth_ = queue_depth;
  }
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

  /// Metrics snapshot with the scheduler-side tallies folded in.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Snapshot-fork support: return to the state of a freshly constructed
  /// Observer (same config, same interned devices, nothing recorded). The
  /// fork path resets instead of reallocating so every set_observer wiring
  /// and cached tid in the stack stays valid.
  void reset() {
    trace_.reset();
    metrics_.reset();
    dispatched_ = 0;
    max_queue_depth_ = 0;
  }

 private:
  ObsConfig config_;
  TraceRecorder trace_;
  MetricsRegistry metrics_;
  std::uint64_t dispatched_ = 0;
  std::size_t max_queue_depth_ = 0;
};

}  // namespace blap::obs
