#include "obs/obs.hpp"

#include <bit>

#include "common/log.hpp"

namespace blap::obs {

void HistData::observe(std::uint64_t value) {
  if (count == 0 || value < min) min = value;
  if (value > max) max = value;
  ++count;
  sum += value;
  ++buckets[std::bit_width(value)];
}

void HistData::merge(const HistData& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
  for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) {
    auto [it, inserted] = gauges.try_emplace(name, value);
    if (!inserted && value > it->second) it->second = value;
  }
  for (const auto& [name, hist] : other.histograms) histograms[name].merge(hist);
}

std::string MetricsSnapshot::to_json(const std::string& indent) const {
  const std::string in1 = indent + "  ";
  const std::string in2 = indent + "    ";
  std::string out = "{\n";

  auto emit_u64_map = [&](const char* key,
                          const std::map<std::string, std::uint64_t, std::less<>>& map,
                          bool trailing_comma) {
    out += in1 + "\"" + key + "\": {";
    bool first = true;
    for (const auto& [name, value] : map) {
      out += first ? "\n" : ",\n";
      first = false;
      out += in2 +
             strfmt("\"%s\": %llu", json_escape(name).c_str(),
                    static_cast<unsigned long long>(value));
    }
    out += first ? "}" : "\n" + in1 + "}";
    if (trailing_comma) out += ",";
    out += "\n";
  };

  emit_u64_map("counters", counters, true);
  emit_u64_map("gauges", gauges, true);

  out += in1 + "\"histograms\": {";
  bool first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += in2 + strfmt("\"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
                        "\"max\": %llu, \"log2_buckets\": [",
                        json_escape(name).c_str(),
                        static_cast<unsigned long long>(hist.count),
                        static_cast<unsigned long long>(hist.sum),
                        static_cast<unsigned long long>(hist.count > 0 ? hist.min : 0),
                        static_cast<unsigned long long>(hist.max));
    bool first_bucket = true;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      if (hist.buckets[b] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += strfmt("[%zu, %llu]", b, static_cast<unsigned long long>(hist.buckets[b]));
    }
    out += "]}";
  }
  out += first ? "}" : "\n" + in1 + "}";
  out += "\n" + indent + "}";
  return out;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  const auto it = data_.counters.find(name);
  if (it != data_.counters.end()) {
    it->second += delta;
  } else {
    data_.counters.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::gauge_max(std::string_view name, std::uint64_t value) {
  const auto it = data_.gauges.find(name);
  if (it != data_.gauges.end()) {
    if (value > it->second) it->second = value;
  } else {
    data_.gauges.emplace(std::string(name), value);
  }
}

void MetricsRegistry::observe(std::string_view name, std::uint64_t value) {
  auto it = data_.histograms.find(name);
  if (it == data_.histograms.end())
    it = data_.histograms.emplace(std::string(name), HistData{}).first;
  it->second.observe(value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = data_.counters.find(name);
  return it != data_.counters.end() ? it->second : 0;
}

Observer::Observer(ObsConfig config)
    : config_(config), trace_(config.trace_capacity) {}

MetricsSnapshot Observer::snapshot() const {
  MetricsSnapshot snap = metrics_.data();
  if (config_.metrics) {
    snap.counters["scheduler.events_dispatched"] += dispatched_;
    auto [it, inserted] =
        snap.gauges.try_emplace("scheduler.max_queue_depth", max_queue_depth_);
    if (!inserted && max_queue_depth_ > it->second) it->second = max_queue_depth_;
  }
  return snap;
}

}  // namespace blap::obs
