#include "obs/obs.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace blap::obs {

const char* to_string(Layer layer) {
  switch (layer) {
    case Layer::kRadio: return "radio";
    case Layer::kScheduler: return "sched";
    case Layer::kController: return "ctrl";
    case Layer::kLmp: return "lmp";
    case Layer::kHci: return "hci";
    case Layer::kHost: return "host";
    case Layer::kSecurity: return "sec";
    case Layer::kAttack: return "attack";
  }
  return "?";
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

std::uint32_t TraceRecorder::intern_device(std::string_view name) {
  for (std::uint32_t i = 0; i < devices_.size(); ++i)
    if (devices_[i] == name) return i;
  devices_.emplace_back(name);
  return static_cast<std::uint32_t>(devices_.size() - 1);
}

void TraceRecorder::push(TraceEvent event) {
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::instant(SimTime ts, std::uint32_t device, Layer layer,
                            std::string name, std::string detail) {
  TraceEvent ev;
  ev.ts = ts;
  ev.seq = next_seq_++;
  ev.phase = 'i';
  ev.layer = layer;
  ev.device = device;
  ev.name = std::move(name);
  ev.args = std::move(detail);
  push(std::move(ev));
}

std::uint64_t TraceRecorder::begin_span(SimTime ts, std::uint32_t device, Layer layer,
                                        std::string name, std::string detail) {
  const std::uint64_t id = next_span_++;
  open_[id] = OpenSpan{layer, device, name};
  TraceEvent ev;
  ev.ts = ts;
  ev.seq = next_seq_++;
  ev.phase = 'b';
  ev.layer = layer;
  ev.device = device;
  ev.span_id = id;
  ev.name = std::move(name);
  ev.args = std::move(detail);
  push(std::move(ev));
  return id;
}

void TraceRecorder::end_span(SimTime ts, std::uint64_t id, std::string detail) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;  // never opened, or already closed
  TraceEvent ev;
  ev.ts = ts;
  ev.seq = next_seq_++;
  ev.phase = 'e';
  ev.layer = it->second.layer;
  ev.device = it->second.device;
  ev.span_id = id;
  ev.name = it->second.name;
  ev.args = std::move(detail);
  open_.erase(it);
  push(std::move(ev));
}

namespace {

/// Events sorted by (ts, seq): insertion order except where a span end was
/// recorded ahead of virtual time (paging-race windows).
std::vector<const TraceEvent*> time_ordered(const std::deque<TraceEvent>& events) {
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events.size());
  for (const TraceEvent& ev : events) sorted.push_back(&ev);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->ts != b->ts) return a->ts < b->ts;
                     return a->seq < b->seq;
                   });
  return sorted;
}

}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  std::string out;
  out.reserve(256 + events_.size() * 96);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  out +=
      "  {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"blap-sim (virtual time)\"}}";
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    out += strfmt(
        ",\n  {\"ph\": \"M\", \"pid\": 0, \"tid\": %u, \"name\": \"thread_name\", "
        "\"args\": {\"name\": \"%s\"}}",
        i, json_escape(devices_[i]).c_str());
  }

  // Pair span begin/end events retained in the ring.
  std::unordered_map<std::uint64_t, const TraceEvent*> ends;
  for (const TraceEvent& ev : events_)
    if (ev.phase == 'e') ends[ev.span_id] = &ev;

  for (const TraceEvent* ev : time_ordered(events_)) {
    if (ev->phase == 'e') {
      continue;  // consumed by its begin below (orphans add nothing useful)
    }
    out += ",\n  {";
    out += strfmt("\"name\": \"%s\", \"cat\": \"%s\", ", json_escape(ev->name).c_str(),
                  to_string(ev->layer));
    std::string args;
    if (!ev->args.empty())
      args += strfmt("\"detail\": \"%s\"", json_escape(ev->args).c_str());
    if (ev->phase == 'i') {
      out += "\"ph\": \"i\", \"s\": \"t\", ";
    } else {
      const auto end_it = ends.find(ev->span_id);
      const SimTime end_ts = end_it != ends.end() ? end_it->second->ts : ev->ts;
      out += strfmt("\"ph\": \"X\", \"dur\": %llu, ",
                    static_cast<unsigned long long>(end_ts - ev->ts));
      if (end_it != ends.end()) {
        if (!end_it->second->args.empty()) {
          if (!args.empty()) args += ", ";
          args += strfmt("\"end\": \"%s\"", json_escape(end_it->second->args).c_str());
        }
      } else {
        if (!args.empty()) args += ", ";
        args += "\"unclosed\": true";
      }
    }
    out += strfmt("\"pid\": 0, \"tid\": %u, \"ts\": %llu", ev->device,
                  static_cast<unsigned long long>(ev->ts));
    if (!args.empty()) out += ", \"args\": {" + args + "}";
    out += "}";
  }
  out += strfmt("\n], \"otherData\": {\"dropped_events\": %llu}}\n",
                static_cast<unsigned long long>(dropped_));
  return out;
}

std::string TraceRecorder::to_text() const {
  std::string out;
  out.reserve(events_.size() * 64);
  if (dropped_ > 0)
    out += strfmt("... %llu earlier event(s) dropped (ring capacity %zu)\n",
                  static_cast<unsigned long long>(dropped_), capacity_);
  for (const TraceEvent* ev : time_ordered(events_)) {
    const char* mark = ev->phase == 'b' ? ">" : (ev->phase == 'e' ? "<" : "|");
    const char* device =
        ev->device < devices_.size() ? devices_[ev->device].c_str() : "?";
    out += strfmt("[%12llu us] %-14s %-6s %s %s",
                  static_cast<unsigned long long>(ev->ts), device,
                  to_string(ev->layer), mark, ev->name.c_str());
    if (!ev->args.empty()) {
      out += "  ";
      out += ev->args;
    }
    out += "\n";
  }
  return out;
}

}  // namespace blap::obs
