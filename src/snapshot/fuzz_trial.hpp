// fuzz_trial.hpp — the snapshot-forked stack fuzzing trial body.
//
// One fuzz_stack execution = one fork of the warm bonded cell (the same
// snapshot the chaos sweep and the fork bench use), one mutated op stream
// injected into the live controller+host state machines, one oracle pass.
// The input byte-string is decoded as a bounded sequence of injection ops —
// raw HCI packets pushed through a device's HciTransport in either
// direction, raw LMP/ACL air frames pushed onto the accessory–target radio
// link, and virtual-time advances — so a mutated corpus entry is a
// deterministic little attack script against the bonded stack.
//
// The oracle is layered exactly like the chaos trial's (DESIGN §14):
//
//   * the PR-9 InvariantMonitor audits every scheduler dispatch and runs a
//     final check_now() — any violation is a finding;
//   * after the op stream, the cell must DRAIN: explicit disconnects plus a
//     full timeout window must leave zero radio links, zero host ACLs and
//     zero controller links. A survivor means some layer wedged on injected
//     garbage — a "stuck" finding;
//   * the whole trial runs under an event budget — a scheduler storm
//     (self-rearming event loop) blows the budget and is a "runaway"
//     finding rather than a hang.
//
// The body is shared by the fuzz engine's stack target and by replay.cpp's
// "fuzz_stack" bundle kind, so a pinned finding replays through the exact
// code that found it. The feature callback keeps this layer free of any
// dependency on the fuzz engine: the target adapts it onto its FeatureSink.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "invariants/monitor.hpp"
#include "snapshot/chaos_trial.hpp"
#include "snapshot/scenarios.hpp"
#include "snapshot/snapshot.hpp"

namespace blap::snapshot {

/// Most ops one input may decode to; surplus bytes are ignored. Bounds the
/// per-execution cost so throughput stays fuzzing-grade.
inline constexpr std::size_t kFuzzMaxOps = 24;

/// Scheduler events one execution may dispatch before it is declared a
/// runaway. Normal executions run a few thousand events; a storm hits this
/// within one settle window.
inline constexpr std::uint64_t kFuzzEventBudget = 200'000;

/// Virtual settle window after each injection op.
inline constexpr SimTime kFuzzSettleWindow = kSecond / 20;

/// Drain window after the op stream: longer than the monitor's 120 s
/// link-table-agreement grace (same argument as kChaosDrainWindow), so any
/// cross-layer skew the injection opened is adjudicated inside the trial.
inline constexpr SimTime kFuzzDrainWindow = 150 * kSecond;

struct FuzzStackReport {
  /// False only when the warm snapshot failed to restore (harness error,
  /// counted as a finding so it can never pass silently).
  bool restored = true;
  std::string restore_error;
  std::size_t ops_applied = 0;
  std::uint64_t events = 0;
  bool runaway = false;
  bool drained = true;
  SimTime virtual_end = 0;
  std::vector<invariants::Violation> violations;

  [[nodiscard]] bool finding() const {
    return !restored || runaway || !drained || !violations.empty();
  }
  /// Stable finding class for minimisation and reporting: "restore-failed",
  /// "invariant-violation", "runaway", "stuck", or "" when clean.
  [[nodiscard]] std::string finding_kind() const;
  [[nodiscard]] std::string finding_detail() const;
};

/// Optional per-op/state feature callback (domain, value); see
/// fuzz/coverage.hpp for how the engine folds these into its map.
using FuzzFeatureFn = std::function<void(std::uint8_t, std::uint64_t)>;

/// Run one stack-fuzz trial on `s` (the bonded_cell_params() topology):
/// restore `warm`, reseed with `seed`, decode and inject `input`, drain,
/// classify. Deterministic in (warm, seed, input).
[[nodiscard]] FuzzStackReport run_fuzz_stack_trial(Scenario& s, const Snapshot& warm,
                                                   std::uint64_t seed, BytesView input,
                                                   const FuzzFeatureFn& feature = nullptr);

/// Trial variant for the rebuild-per-iteration throughput baseline: `s` is
/// assumed freshly built + warmed (bonded_warm_setup) already; no snapshot
/// restore happens. Same injection, oracle and classification.
[[nodiscard]] FuzzStackReport run_fuzz_stack_trial_no_restore(
    Scenario& s, std::uint64_t seed, BytesView input,
    const FuzzFeatureFn& feature = nullptr);

}  // namespace blap::snapshot
