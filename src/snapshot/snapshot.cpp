#include "snapshot/snapshot.hpp"

#include <cstdio>

#include "chaos/failpoint.hpp"

namespace blap::snapshot {
namespace {

constexpr std::uint32_t kSimTag = state::tag('S', 'I', 'M', ' ');
constexpr std::uint32_t kMediumTag = state::tag('M', 'E', 'D', 'M');
constexpr std::uint32_t kDeviceTag = state::tag('D', 'E', 'V', 'C');

void set_why(std::string* why, std::string text) {
  if (why != nullptr) *why = std::move(text);
}

/// Reads the fixed header; returns false (reader failed or value mismatch)
/// on anything but a version-1 BLAPSNAP. On success `strict` is filled in.
bool read_header(state::StateReader& r, bool& strict) {
  const auto magic = r.fixed<Snapshot::kMagic.size()>();
  if (!r.ok() || magic != Snapshot::kMagic) {
    r.fail("not a BLAPSNAP snapshot (bad magic)");
    return false;
  }
  const std::uint32_t version = r.u32();
  if (!r.ok() || version != Snapshot::kVersion) {
    r.fail("unsupported snapshot version");
    return false;
  }
  strict = r.boolean();
  // Bit-rot in the stored header: the snapshot must be rejected up front
  // with a clean typed error, never half-applied.
  if (BLAP_FAILPOINT("snapshot.load.header_reject")) {
    r.fail("snapshot header rejected (chaos failpoint)");
    return false;
  }
  return r.ok();
}

}  // namespace

Snapshot Snapshot::serialize(core::Simulation& sim, bool strict, bool* ok) {
  state::StateWriter w;
  *ok = true;
  // Byte-wise on purpose: GCC 12's -Wstringop-overflow misfires on a range
  // insert of a static constexpr array into a fresh vector.
  for (const std::uint8_t b : kMagic) w.u8(b);
  w.u32(kVersion);
  w.boolean(strict);

  const auto sim_token = w.begin_section(kSimTag);
  w.u64(sim.scheduler().now());
  w.u64(sim.scheduler().next_seq());
  for (const std::uint64_t limb : sim.rng().state()) w.u64(limb);
  w.u64(sim.devices().size());
  for (const auto& device : sim.devices()) {
    w.str(device->spec().name);
    w.u8(static_cast<std::uint8_t>(device->spec().transport));
  }
  w.end_section(sim_token);

  const auto roster = sim.endpoint_roster();
  const auto medium_token = w.begin_section(kMediumTag);
  if (!sim.medium().save_state(w, roster)) *ok = false;
  w.end_section(medium_token);

  for (const auto& device : sim.devices()) {
    const auto device_token = w.begin_section(kDeviceTag);
    device->save_state(w);
    w.end_section(device_token);
  }

  Snapshot snap;
  snap.data_ = w.take();
  snap.strict_ = strict;
  snap.now_ = sim.scheduler().now();
  return snap;
}

std::optional<Snapshot> Snapshot::capture(core::Simulation& sim, std::string* why) {
  if (!sim.scheduler().idle()) {
    set_why(why, "scheduler not idle: " + std::to_string(sim.scheduler().pending_events()) +
                     " event(s) still queued");
    return std::nullopt;
  }
  for (const auto& device : sim.devices()) {
    if (!device->quiescent()) {
      set_why(why, "device '" + device->spec().name + "' not quiescent");
      return std::nullopt;
    }
  }
  bool ok = false;
  Snapshot snap = serialize(sim, /*strict=*/true, &ok);
  if (!ok) {
    set_why(why, "a radio link references an endpoint outside the simulation roster");
    return std::nullopt;
  }
  return snap;
}

Snapshot Snapshot::capture_relaxed(core::Simulation& sim) {
  bool ok = false;
  return serialize(sim, /*strict=*/false, &ok);
}

bool Snapshot::apply(core::Simulation& sim, state::RestoreMode mode, std::string* why) const {
  state::StateReader r(data_);
  bool strict = false;
  if (!read_header(r, strict)) {
    set_why(why, r.error());
    return false;
  }
  if (mode == state::RestoreMode::kRewind && !strict) {
    set_why(why, "fork restore requires a strict (quiescent-point) snapshot");
    return false;
  }

  // --- validate everything before mutating anything -------------------------
  r.expect_section(kSimTag);
  const SimTime captured_now = r.u64();
  const std::uint64_t next_seq = r.u64();
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& limb : rng_state) limb = r.u64();
  const std::uint64_t device_count = r.u64();
  if (r.ok() && device_count != sim.devices().size()) {
    set_why(why, "topology mismatch: snapshot has " + std::to_string(device_count) +
                     " device(s), simulation has " + std::to_string(sim.devices().size()));
    return false;
  }
  for (std::uint64_t i = 0; r.ok() && i < device_count; ++i) {
    const std::string name = r.str();
    const auto kind = static_cast<core::TransportKind>(r.u8());
    if (!r.ok()) break;
    const auto& spec = sim.devices()[i]->spec();
    if (name != spec.name || kind != spec.transport) {
      set_why(why, "topology mismatch at device " + std::to_string(i) + ": snapshot has '" +
                       name + "', simulation has '" + spec.name + "'");
      return false;
    }
  }
  if (mode == state::RestoreMode::kInPlace && r.ok() && captured_now != sim.now()) {
    set_why(why, "in-place restore must happen at the capture instant (snapshot t=" +
                     std::to_string(captured_now) + " us, simulation t=" +
                     std::to_string(sim.now()) + " us)");
    return false;
  }
  if (!r.ok()) {
    set_why(why, r.error());
    return false;
  }

  // --- commit ---------------------------------------------------------------
  if (mode == state::RestoreMode::kRewind) sim.scheduler().rewind(captured_now, next_seq);
  sim.rng().set_state(rng_state);

  const auto roster = sim.endpoint_roster();
  r.expect_section(kMediumTag);
  sim.medium().load_state(r, roster, mode);
  // The byte stream dies mid-commit (a truncation the structural walk did
  // not model): every later read fails soft and apply() must report — the
  // caller abandons the half-restored simulation.
  if (BLAP_FAILPOINT("snapshot.load.truncated")) r.fail("snapshot truncated mid-restore");
  for (const auto& device : sim.devices()) {
    r.expect_section(kDeviceTag);
    device->load_state(r, mode);
  }
  if (mode == state::RestoreMode::kRewind && sim.observer() != nullptr)
    sim.observer()->reset();

  if (!r.ok()) {
    // Structural validation in from_bytes() makes this unreachable for any
    // snapshot that parsed; report it anyway rather than continuing on a
    // half-restored simulation.
    set_why(why, r.error());
    return false;
  }
  return true;
}

bool Snapshot::restore(core::Simulation& sim, std::string* why) const {
  return apply(sim, state::RestoreMode::kRewind, why);
}

bool Snapshot::restore_in_place(core::Simulation& sim, std::string* why) const {
  return apply(sim, state::RestoreMode::kInPlace, why);
}

std::optional<Snapshot> Snapshot::from_bytes(Bytes data, std::string* why) {
  state::StateReader r(data);
  bool strict = false;
  if (!read_header(r, strict)) {
    set_why(why, r.error());
    return std::nullopt;
  }

  // Structural walk: the SIM section is parsed (it carries the clock and the
  // device count), the medium and device sections are hopped over by their
  // recorded lengths. Any truncation, tag mismatch or trailing garbage is
  // caught here, before a restore can touch a live simulation.
  r.expect_section(kSimTag);
  const SimTime captured_now = r.u64();
  r.skip(8 + 4 * 8);  // next_seq + rng state
  const std::uint64_t device_count = r.u64();
  for (std::uint64_t i = 0; r.ok() && i < device_count; ++i) {
    (void)r.str();  // device name
    (void)r.u8();   // transport kind
  }
  r.skip(r.expect_section(kMediumTag));
  for (std::uint64_t i = 0; r.ok() && i < device_count; ++i)
    r.skip(r.expect_section(kDeviceTag));
  if (r.ok() && r.remaining() != 0) r.fail("trailing bytes after final section");
  if (!r.ok()) {
    set_why(why, r.error());
    return std::nullopt;
  }

  Snapshot snap;
  snap.data_ = std::move(data);
  snap.strict_ = strict;
  snap.now_ = captured_now;
  return snap;
}

bool Snapshot::save_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(data_.data(), 1, data_.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == data_.size() && closed;
}

std::optional<Snapshot> Snapshot::load_file(const std::string& path, std::string* why) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    set_why(why, "cannot open '" + path + "'");
    return std::nullopt;
  }
  Bytes data;
  std::array<std::uint8_t, 4096> chunk{};
  for (;;) {
    const std::size_t n = std::fread(chunk.data(), 1, chunk.size(), f);
    data.insert(data.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(n));
    if (n < chunk.size()) break;
  }
  std::fclose(f);
  return from_bytes(std::move(data), why);
}

}  // namespace blap::snapshot
