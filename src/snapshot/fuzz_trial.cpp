#include "snapshot/fuzz_trial.hpp"

#include <algorithm>

#include "hci/packets.hpp"

namespace blap::snapshot {
namespace {

/// Feature domains this layer emits (the fuzz engine's portable fallback
/// coverage). Kept clear of the codec harness's 0x10.. range.
constexpr std::uint8_t kDomOp = 0x30;        // (op kind << 8) | accepted
constexpr std::uint8_t kDomState = 0x31;     // per-op state-transition hash
constexpr std::uint8_t kDomOutcome = 0x32;   // end-of-trial classification
constexpr std::uint8_t kDomMetric = 0x33;    // Observer counter fingerprints

/// Injection op kinds, selected by the stream's leading byte of each op.
enum class OpKind : std::uint8_t {
  kEventToTarget = 0,     // HCI packet -> target host (controller→host dir)
  kCommandToTarget = 1,   // HCI packet -> target controller (host→controller)
  kAclToTarget = 2,       // HCI ACL data -> target controller
  kAirToTarget = 3,       // raw air frame accessory→target radio link
  kEventToAccessory = 4,  // HCI packet -> accessory host
  kCommandToAccessory = 5,
  kAirToAccessory = 6,    // raw air frame target→accessory radio link
  kAdvanceTime = 7,
  kKinds = 8,
};

/// Hash of the cross-layer state the stack is in, emitted after every op:
/// this is what makes the fallback map *guided* — an input that drives the
/// cell into a state no other input reached becomes a kept corpus entry.
std::uint64_t state_hash(core::Simulation& sim) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  const auto fold = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ull;
  };
  fold(sim.medium().link_count());
  for (const auto& device : sim.devices()) {
    fold(device->host().acls().size());
    fold(device->controller().audit_links().size());
    fold(device->controller().quiescent() ? 1u : 0u);
    for (const auto& acl : device->host().acls()) {
      fold(acl.handle);
      fold((acl.authenticated ? 1u : 0u) | (acl.encrypted ? 2u : 0u) |
           (acl.degraded ? 4u : 0u));
    }
  }
  return h;
}

struct TrialContext {
  Scenario& s;
  const FuzzFeatureFn& feature;
  FuzzStackReport& report;

  void emit(std::uint8_t domain, std::uint64_t value) const {
    if (feature) feature(domain, value);
  }

  /// Advance virtual time under the event budget. Returns false once the
  /// budget is blown (report.runaway set; callers stop injecting).
  bool run(SimTime window) const {
    // Chunked so a storm is caught within ~kFuzzEventBudget dispatches, not
    // after an arbitrarily long window of them.
    constexpr SimTime kChunk = kSecond;
    while (window > 0 && !report.runaway) {
      const SimTime slice = window < kChunk ? window : kChunk;
      report.events += s.sim->scheduler().run_for(slice);
      window -= slice;
      if (report.events > kFuzzEventBudget) report.runaway = true;
    }
    return !report.runaway;
  }
};

void inject_ops(TrialContext& ctx, BytesView input) {
  ByteReader reader(input);
  core::Device* const target = ctx.s.target;
  core::Device* const accessory = ctx.s.accessory;

  while (ctx.report.ops_applied < kFuzzMaxOps && !ctx.report.runaway) {
    const auto selector = reader.u8();
    if (!selector) break;
    const auto kind = static_cast<OpKind>(*selector %
                                          static_cast<std::uint8_t>(OpKind::kKinds));
    ++ctx.report.ops_applied;
    bool accepted = false;

    switch (kind) {
      case OpKind::kEventToTarget:
      case OpKind::kCommandToTarget:
      case OpKind::kAclToTarget:
      case OpKind::kEventToAccessory:
      case OpKind::kCommandToAccessory: {
        // [len u8][payload...] — the HCI packet body, typed by the op.
        const auto len = reader.u8();
        if (!len) break;
        const auto body = reader.bytes(std::min<std::size_t>(*len, reader.remaining()));
        if (!body) break;
        hci::HciPacket packet;
        packet.payload = *body;
        core::Device* device = target;
        hci::Direction direction = hci::Direction::kControllerToHost;
        switch (kind) {
          case OpKind::kEventToTarget: packet.type = hci::PacketType::kEvent; break;
          case OpKind::kEventToAccessory:
            packet.type = hci::PacketType::kEvent;
            device = accessory;
            break;
          case OpKind::kCommandToTarget:
            packet.type = hci::PacketType::kCommand;
            direction = hci::Direction::kHostToController;
            break;
          case OpKind::kCommandToAccessory:
            packet.type = hci::PacketType::kCommand;
            direction = hci::Direction::kHostToController;
            device = accessory;
            break;
          case OpKind::kAclToTarget:
            packet.type = hci::PacketType::kAclData;
            direction = hci::Direction::kHostToController;
            break;
          default: break;
        }
        device->transport().send(direction, packet);
        accepted = true;
        break;
      }
      case OpKind::kAirToTarget:
      case OpKind::kAirToAccessory: {
        // [len u8][frame...] pushed onto the accessory–target baseband link,
        // as if the sender's controller emitted it. No-op (bytes still
        // consumed) once the link is torn down.
        const auto len = reader.u8();
        if (!len) break;
        const auto frame = reader.bytes(std::min<std::size_t>(*len, reader.remaining()));
        if (!frame) break;
        const auto link =
            ctx.s.sim->medium().link_between(accessory->address(), target->address());
        if (link.has_value()) {
          core::Device* sender =
              kind == OpKind::kAirToTarget ? accessory : target;
          ctx.s.sim->medium().send_frame(*link, &sender->controller(), *frame);
          accepted = true;
        }
        break;
      }
      case OpKind::kAdvanceTime: {
        // [ticks u8] x 50 ms: up to ~12.75 s of extra virtual time, enough
        // to cross LMP/accept/supervision timer edges mid-stream.
        const auto ticks = reader.u8();
        if (!ticks) break;
        if (!ctx.run(*ticks * (kSecond / 20))) return;
        accepted = true;
        break;
      }
      case OpKind::kKinds: break;
    }

    ctx.emit(kDomOp, (static_cast<std::uint64_t>(kind) << 8) | (accepted ? 1u : 0u));
    if (!ctx.run(kFuzzSettleWindow)) return;
    ctx.emit(kDomState, state_hash(*ctx.s.sim));
  }
}

FuzzStackReport run_trial_body(Scenario& s, std::uint64_t seed, BytesView input,
                               const FuzzFeatureFn& feature) {
  FuzzStackReport report;
  TrialContext ctx{s, feature, report};

  s.sim->reseed(seed);
  s.sim->set_fault_plan(recovery_fault_plan());

  invariants::InvariantMonitor::Config monitor_config;
  if (s.attacker != nullptr) monitor_config.exempt.push_back(s.attacker->address());
  invariants::InvariantMonitor monitor(*s.sim, monitor_config);
  monitor.install();
  // Sniffer attaches after any restore (kRewind truncates the sniffer
  // list); reset() forgives the virtual-clock rewind itself.
  monitor.attach_sniffer();
  monitor.reset();

  inject_ops(ctx, input);

  // Drain phase — mirror of the chaos trial: explicit disconnects, then a
  // full timeout window. A healthy stack always reaches zero links; a layer
  // wedged on injected garbage is exactly what the oracle is here to catch.
  if (!report.runaway) {
    for (const auto& device : s.sim->devices())
      for (const auto& acl : device->host().acls()) device->host().disconnect(acl.peer);
    ctx.run(kFuzzDrainWindow);
  }
  monitor.check_now();

  report.virtual_end = s.sim->now();
  report.violations = monitor.violations();

  bool drained = s.sim->medium().link_count() == 0;
  for (const auto& device : s.sim->devices()) {
    if (!device->host().acls().empty()) drained = false;
    if (!device->controller().audit_links().empty()) drained = false;
  }
  report.drained = drained;

  ctx.emit(kDomOutcome, (report.runaway ? 1u : 0u) | (drained ? 2u : 0u) |
                            (report.violations.empty() ? 4u : 0u));
  ctx.emit(kDomState, state_hash(*s.sim));
  if (obs::Observer* obs = s.sim->observer(); obs != nullptr && feature) {
    // Metric fingerprints: every (name, log2 count) pair is a feature, so
    // "this input made the retry counter jump an order of magnitude" is
    // novel behaviour even when the end state hash is familiar.
    const obs::MetricsSnapshot snap = obs->snapshot();
    for (const auto& [name, value] : snap.counters) {
      std::uint64_t h = 0xCBF29CE484222325ull;
      for (const char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001B3ull;
      }
      std::uint64_t bucket = 0;
      for (std::uint64_t v = value; v > 0; v >>= 1) ++bucket;
      ctx.emit(kDomMetric, h ^ bucket);
    }
  }
  return report;
}

}  // namespace

std::string FuzzStackReport::finding_kind() const {
  if (!restored) return "restore-failed";
  if (!violations.empty()) return "invariant-violation";
  if (runaway) return "runaway";
  if (!drained) return "stuck";
  return "";
}

std::string FuzzStackReport::finding_detail() const {
  if (!restored) return restore_error;
  if (!violations.empty())
    return violations.front().invariant + ": " + violations.front().detail;
  if (runaway)
    return "event budget exceeded (" + std::to_string(events) + " events)";
  if (!drained) return "links or ACLs survived the drain window";
  return "";
}

FuzzStackReport run_fuzz_stack_trial(Scenario& s, const Snapshot& warm,
                                     std::uint64_t seed, BytesView input,
                                     const FuzzFeatureFn& feature) {
  std::string why;
  if (!warm.restore(*s.sim, &why)) {
    FuzzStackReport report;
    report.restored = false;
    report.restore_error = why;
    report.virtual_end = s.sim->now();
    return report;
  }
  return run_trial_body(s, seed, input, feature);
}

FuzzStackReport run_fuzz_stack_trial_no_restore(Scenario& s, std::uint64_t seed,
                                                BytesView input,
                                                const FuzzFeatureFn& feature) {
  return run_trial_body(s, seed, input, feature);
}

}  // namespace blap::snapshot
