// replay.hpp — self-contained failure-reproduction bundles.
//
// A Monte-Carlo campaign that reports "3 of 400 trials failed" is only
// useful if those three trials can be put under a microscope. A
// ReplayBundle is everything needed to do that, in one text file:
//
//   * the scenario (a ScenarioParams manifest line — which topology),
//   * the warm snapshot the trial was forked from (base64 BLAPSNAP bytes),
//   * the trial identity (index, seed) and the fault plan it ran under,
//   * what the trial did (a trial-kind key into execute_trial()'s registry),
//   * and the recorded verdict: success flag, value, final virtual clock,
//     and the deterministic metrics JSON when the trial recorded metrics.
//
// replay_bundle() re-executes the bundle from scratch — rebuild topology,
// restore snapshot, reseed, re-install the fault plan, run the trial kind —
// and diffs every recorded field against the re-run. Because the whole
// stack is deterministic, any mismatch means the code under test changed,
// not the weather. The blap-replay tool wraps this with --trace-out to emit
// a Perfetto-loadable Chrome trace of the reproduced trial.
//
// The format is text-first on purpose: bundles live in the repo as test
// fixtures (tests/replay_corpus/) and must diff readably.
#pragma once

#include <optional>
#include <string>

#include "campaign/campaign.hpp"
#include "common/bytes.hpp"
#include "faults/fault_plan.hpp"
#include "snapshot/scenarios.hpp"

namespace blap::snapshot {

/// Typed parse error for bundle loading. A malformed bundle — corrupt or
/// truncated base64, an over-length manifest field, an unknown key — is
/// reported with where it went wrong, never by aborting or by a bare
/// string the caller cannot locate in the file.
struct BundleError {
  /// Path the bundle was loaded from; empty for from_text().
  std::string file;
  /// 1-based line the error was detected on (0 when the text is empty).
  std::size_t line = 0;
  /// Byte offset of that line's first character in the bundle text.
  std::size_t offset = 0;
  std::string message;

  /// "file:line (offset N): message" — file part omitted when empty.
  [[nodiscard]] std::string to_string() const;
};

struct ReplayBundle {
  ScenarioParams scenario;
  /// Seed the warm scenario was built with (the campaign's root seed). The
  /// warm state is seed-independent, but replay rebuilds with the same one
  /// so the rebuilt snapshot can be byte-compared against the recorded one.
  std::uint64_t build_seed = 0;
  std::size_t trial_index = 0;
  std::uint64_t trial_seed = 0;
  /// Key into execute_trial()'s registry (e.g. "page_blocking_attack").
  std::string trial_kind;
  /// Fault plan the trial installed, if any.
  std::optional<faults::FaultPlan> fault_plan;
  /// Chaos faults armed for the trial, encoded with
  /// chaos::encode_fault_sites ("site@ordinal+..."); empty = no chaos.
  std::string chaos_faults;
  /// Named warm setup replayed onto the rebuilt scenario before the drift
  /// check (see resolve_warm_setup in chaos_trial.hpp); empty = the warm
  /// point is the post-build topology.
  std::string warm_setup;
  /// The raw fuzz input for "fuzz_stack" bundles (base64 `fuzz_input:` in
  /// the manifest): the op stream run_fuzz_stack_trial() decodes. Empty for
  /// every other trial kind.
  Bytes fuzz_input;

  // Recorded verdict.
  bool expected_success = false;
  double expected_value = 0.0;
  SimTime expected_virtual_end = 0;
  /// MetricsSnapshot::to_json() of the trial's metrics; empty when the
  /// trial recorded none.
  std::string expected_metrics_json;

  /// Serialized warm Snapshot (strict) the trial forked from.
  Bytes snapshot;

  /// Manifest field values (everything left of the snapshot block) longer
  /// than this are refused — a corrupted bundle must not make the parser
  /// swallow unbounded garbage.
  static constexpr std::size_t kMaxFieldLength = 4096;
  /// Upper bound on the base64 snapshot payload (64 MiB of text).
  static constexpr std::size_t kMaxSnapshotBase64 = 64u << 20;

  [[nodiscard]] std::string to_text() const;
  /// Typed-error parse: on failure fills `error` with line/offset/message.
  [[nodiscard]] static std::optional<ReplayBundle> from_text(const std::string& text,
                                                             BundleError& error);
  /// Convenience wrapper; `*why` gets BundleError::to_string().
  [[nodiscard]] static std::optional<ReplayBundle> from_text(const std::string& text,
                                                             std::string* why = nullptr);
  [[nodiscard]] bool save_file(const std::string& path) const;
  /// Typed-error load: `error.file` is `path`.
  [[nodiscard]] static std::optional<ReplayBundle> load_file(const std::string& path,
                                                             BundleError& error);
  [[nodiscard]] static std::optional<ReplayBundle> load_file(const std::string& path,
                                                             std::string* why = nullptr);
};

/// Result of re-executing a bundle.
struct ReplayOutcome {
  /// Set (with `error`) when the bundle could not be executed at all —
  /// unknown trial kind, snapshot restore failure. The match flags below
  /// are meaningless in that case.
  bool executed = false;
  std::string error;

  campaign::TrialResult result;
  std::string metrics_json;  // empty when the trial kind records no metrics
  std::string trace_json;    // Chrome trace JSON; filled when want_trace

  /// Recorded {success, value, virtual_end} all equal the re-run's.
  bool verdict_matches = false;
  /// Recorded metrics JSON equals the re-run's (true when none recorded).
  bool metrics_match = false;
  /// Rebuilding the scenario from the manifest reproduces the recorded
  /// warm snapshot byte-for-byte. A mismatch flags serialization or setup
  /// drift since the bundle was recorded — replay still proceeds from the
  /// recorded bytes.
  bool snapshot_matches = false;

  [[nodiscard]] bool reproduced() const {
    return executed && verdict_matches && metrics_match;
  }
};

/// Re-execute `bundle` and diff it against its recorded verdict.
/// `want_trace` additionally runs the trial with tracing on and fills
/// ReplayOutcome::trace_json (tracing is pure observation — it cannot
/// change the verdict or the metrics).
[[nodiscard]] ReplayOutcome replay_bundle(const ReplayBundle& bundle, bool want_trace);

/// True for trial kinds replay_bundle() knows how to run:
/// "page_blocking_baseline", "page_blocking_attack",
/// "page_blocking_attack_metrics", "chaos_bonded_cell", "fuzz_stack".
[[nodiscard]] bool known_trial_kind(const std::string& kind);

/// Run one trial of `kind` on a scenario already restored+reseeded.
/// Installs `plan` (when present) exactly as the recording campaign's trial
/// body did, enables observability as the kind demands (metrics for
/// *_metrics kinds, tracing when want_trace), and returns the trial result
/// plus the deterministic emits. Returns nullopt for unknown kinds —
/// including "chaos_bonded_cell", which needs the warm snapshot and is
/// executed by replay_bundle() through run_chaos_trial() instead.
[[nodiscard]] std::optional<ReplayOutcome> execute_trial(
    const std::string& kind, Scenario& s, const std::optional<faults::FaultPlan>& plan,
    bool want_trace);

}  // namespace blap::snapshot
