// snapshot.hpp — whole-simulation capture, restore and fork.
//
// A Snapshot is the complete serialized state of a Simulation: scheduler
// clock and sequence counter, every Rng stream, the radio medium (fault
// plan, attachments, live links), and each device's transport, controller
// and host — explicit, versioned, little-endian bytes with no pointers and
// no hash-order (see common/state_io.hpp).
//
// Two capture disciplines exist because the simulator has two kinds of
// state:
//
//   * capture() — the STRICT/fork path. Requires the scheduler to be idle
//     and every device quiescent (no in-flight pairing, no queued baseband
//     frames, no pending host operations), which is exactly the condition
//     under which {now, next_seq} plus the component fields *are* the whole
//     future-determining state. A strict snapshot can be restored with
//     restore(): the scheduler is rewound (every pre-capture EventHandle
//     goes stale), components drop callback-holding residue, and the
//     simulation continues as if freshly built. Combined with
//     Simulation::reseed(), this is the Monte-Carlo fork: build the
//     topology once, snapshot the warm point, then per trial
//     restore + reseed(trial_seed) — byte-identical to a fresh build.
//
//   * capture_relaxed() — the TEST path. Serializes the same fields at any
//     event boundary, mid-pairing included, without the quiescence check.
//     Restorable only with restore_in_place() onto the very simulation it
//     was captured from (scheduler queue and closures intact); the
//     round-trip property tests use it to prove that what the serializer
//     writes is what the deserializer reads, at arbitrary stop points.
//
// Restore validates before it mutates: magic, version, mode/strictness,
// and the topology fingerprint (device count, names, transport kinds) are
// all checked first, so a mismatched snapshot leaves the simulation
// untouched. A structurally corrupt byte string is rejected earlier, in
// from_bytes()/load_file().
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/scheduler.hpp"
#include "common/state_io.hpp"
#include "core/device.hpp"

namespace blap::snapshot {

class Snapshot {
 public:
  /// First bytes of every snapshot file.
  static constexpr std::array<std::uint8_t, 8> kMagic = {'B', 'L', 'A', 'P',
                                                         'S', 'N', 'A', 'P'};
  /// Bumped on any layout change; readers reject other versions.
  static constexpr std::uint32_t kVersion = 1;

  /// Strict capture at a quiescent point. Returns nullopt — and the reason
  /// in `*why` — when the scheduler still has queued events, a device is
  /// mid-operation, or a link references an endpoint outside the
  /// simulation's roster.
  [[nodiscard]] static std::optional<Snapshot> capture(core::Simulation& sim,
                                                       std::string* why = nullptr);

  /// Relaxed capture at any event boundary (no quiescence check). The
  /// result can only be applied with restore_in_place().
  [[nodiscard]] static Snapshot capture_relaxed(core::Simulation& sim);

  /// Fork restore (strict snapshots only): rewind the scheduler, reload
  /// every component in RestoreMode::kRewind, and reset the observer if
  /// one is attached. `sim` must have the same topology the snapshot was
  /// captured from. On a validation failure the simulation is untouched
  /// and `*why` explains; returns true on success.
  bool restore(core::Simulation& sim, std::string* why = nullptr) const;

  /// Round-trip restore onto the simulation the snapshot was captured
  /// from, at the capture instant (the virtual clock must match). The
  /// scheduler queue is left intact; components reload serialized fields
  /// in RestoreMode::kInPlace.
  bool restore_in_place(core::Simulation& sim, std::string* why = nullptr) const;

  /// True for capture(); false for capture_relaxed().
  [[nodiscard]] bool strict() const { return strict_; }
  /// Virtual time at capture.
  [[nodiscard]] SimTime captured_at() const { return now_; }
  /// The serialized form. Byte-identical for identical logical state.
  [[nodiscard]] const Bytes& bytes() const { return data_; }

  /// Parse and structurally validate serialized bytes: magic, version, and
  /// the full section chain (every tag present, every length in bounds, no
  /// trailing garbage). Semantic topology checks happen at restore time.
  [[nodiscard]] static std::optional<Snapshot> from_bytes(Bytes data,
                                                          std::string* why = nullptr);

  /// File round-trip (binary). load_file validates like from_bytes.
  [[nodiscard]] bool save_file(const std::string& path) const;
  [[nodiscard]] static std::optional<Snapshot> load_file(const std::string& path,
                                                         std::string* why = nullptr);

 private:
  Snapshot() = default;
  [[nodiscard]] static Snapshot serialize(core::Simulation& sim, bool strict, bool* ok);
  bool apply(core::Simulation& sim, state::RestoreMode mode, std::string* why) const;

  Bytes data_;
  bool strict_ = false;
  SimTime now_ = 0;
};

}  // namespace blap::snapshot
