// scenarios.hpp — the shared scenario registry.
//
// Every path that needs a simulation topology — the reproduction benches,
// the snapshot-fork campaign runner, and the blap-replay tool — must build
// the *same* topology from the same inputs, or snapshot fingerprints and
// record–replay verdicts stop lining up. This header is the single source
// of those topologies:
//
//   * build_abc_scenario()        — the A/C/M triple of the paper's §III
//                                   (Table II page-blocking cells).
//   * build_extraction_scenario() — the variant with a confirm-capable
//                                   accessory (Table I extraction cells).
//   * ScenarioParams + build_scenario() — a serializable description of
//     either, so a replay bundle's one-line manifest can name the exact
//     topology a failure was recorded on and rebuild it years later.
//
// bench/bench_util.hpp delegates its historical make_scenario() /
// make_extraction_scenario() helpers here, so bench outputs are unchanged.
//
// Determinism contract: builders consume *zero* draws from the simulation's
// Rng streams (device bring-up is fixed-schedule HCI traffic), which is what
// makes a warm snapshot seed-independent: restore + reseed(trial_seed) is
// byte-identical to a fresh build with trial_seed.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/device.hpp"
#include "core/profiles.hpp"

namespace blap::snapshot {

/// A built simulation plus named roles. The Device pointers stay valid for
/// the simulation's lifetime (Simulation owns its devices) — across any
/// number of snapshot restores and reseeds.
struct Scenario {
  std::unique_ptr<core::Simulation> sim;
  core::Device* attacker = nullptr;
  core::Device* accessory = nullptr;
  core::Device* target = nullptr;
};

/// Standard A/C/M triple: Nexus 5x attacker, hands-free accessory, victim
/// from `victim_profile`. `baseline_bias` calibrates the accessory's page
/// race for Table II baselines.
[[nodiscard]] Scenario build_abc_scenario(std::uint64_t seed,
                                          const core::DeviceProfile& victim_profile,
                                          core::TransportKind accessory_transport,
                                          bool accessory_has_dump,
                                          double baseline_bias = 0.5);

/// Accessory variant with a confirm-capable UI (for extraction scenarios,
/// where C must pass Numeric Comparison pairing with M).
[[nodiscard]] Scenario build_extraction_scenario(
    std::uint64_t seed, const core::DeviceProfile& accessory_profile_row);

/// Which published table a profile row comes from.
enum class ProfileTable : std::uint8_t { kTable1, kTable2 };

/// A scenario as data: everything build_scenario() needs, and nothing it
/// doesn't. Round-trips through a one-line text form (encode/decode) for
/// replay-bundle manifests.
struct ScenarioParams {
  enum class Kind : std::uint8_t {
    kAbc,         // build_abc_scenario
    kExtraction,  // build_extraction_scenario
  };
  Kind kind = Kind::kAbc;
  /// Row lookup for the kAbc victim / the kExtraction accessory.
  ProfileTable table = ProfileTable::kTable2;
  std::size_t profile_index = 0;
  // kAbc only:
  core::TransportKind accessory_transport = core::TransportKind::kUart;
  bool accessory_has_dump = true;
  double baseline_bias = 0.5;

  [[nodiscard]] bool operator==(const ScenarioParams&) const = default;
};

/// Resolve the referenced profile row; nullptr when profile_index is out of
/// the table's range.
[[nodiscard]] const core::DeviceProfile* resolve_profile(const ScenarioParams& params);

/// Build the described scenario. Aborts via assert on an out-of-range
/// profile_index — validate with resolve_profile() first for untrusted
/// input (replay bundles).
[[nodiscard]] Scenario build_scenario(std::uint64_t seed, const ScenarioParams& params);

/// One-line `key=value` text form, e.g.
///   `kind=abc table=2 profile=5 transport=uart dump=1 bias=0x1p-1`.
/// The bias is formatted as a C99 hex-float so the double round-trips
/// exactly through the manifest.
[[nodiscard]] std::string encode_scenario(const ScenarioParams& params);
[[nodiscard]] std::optional<ScenarioParams> decode_scenario(std::string_view text);

}  // namespace blap::snapshot
