#include "snapshot/fork_campaign.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>

#include "snapshot/replay.hpp"
#include "snapshot/snapshot.hpp"

namespace blap::snapshot {
namespace {

/// Distinguishes campaigns so a pooled worker thread (or the calling thread
/// under jobs=1) never reuses a warm scenario across run_fork_campaign()
/// calls with different parameters.
std::atomic<std::uint64_t> g_campaign_epoch{0};

struct WorkerState {
  std::uint64_t epoch = 0;
  Scenario scenario;
};

/// Deterministic post-pass: walk the index-ordered results and write a
/// bundle for the first `limit` matches. Identical output for any worker
/// count, because nothing here depends on execution order.
void record_bundles(const campaign::CampaignConfig& config,
                    const ScenarioParams& scenario_params, const Snapshot& warm,
                    const campaign::CampaignSummary& summary, const RecordOptions& record,
                    ForkStats* stats) {
  std::error_code ec;
  std::filesystem::create_directories(record.dir, ec);
  if (ec) return;

  std::size_t recorded = 0;
  for (const campaign::TrialResult& r : summary.results) {
    if (recorded >= record.limit) break;
    const bool matches = record.predicate ? record.predicate(r) : !r.success;
    if (!matches) continue;

    ReplayBundle bundle;
    bundle.scenario = scenario_params;
    bundle.build_seed = config.root_seed;
    bundle.trial_index = r.index;
    bundle.trial_seed = r.seed;
    bundle.trial_kind = record.trial_kind;
    if (record.fault_plan)
      bundle.fault_plan = record.fault_plan(campaign::TrialSpec{r.index, r.seed});
    bundle.expected_success = r.success;
    bundle.expected_value = r.value;
    bundle.expected_virtual_end = r.virtual_end;
    if (r.metrics != nullptr && !r.metrics->empty())
      bundle.expected_metrics_json = r.metrics->to_json();
    bundle.snapshot = warm.bytes();

    char name[64];
    std::snprintf(name, sizeof name, "trial-%06zu.blapreplay", r.index);
    const std::string path = record.dir + "/" + name;
    if (bundle.save_file(path)) {
      if (stats != nullptr) stats->bundle_paths.push_back(path);
      ++recorded;
    }
  }
}

}  // namespace

bool fork_mode_enabled() {
  const char* env = std::getenv("BLAP_SNAPSHOT_FORK");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
         std::strcmp(env, "on") == 0;
}

campaign::CampaignSummary run_fork_campaign(const campaign::CampaignConfig& config,
                                            const ScenarioParams& scenario,
                                            const ForkTrialFn& trial,
                                            const RecordOptions* record,
                                            ForkStats* stats,
                                            const WarmSetupFn& warm_setup) {
  // The rebuild path a forked trial must be byte-equivalent to. Without a
  // warm-up, build_scenario(spec.seed) directly (setup draws no randomness,
  // so build(seed) == build(root) + reseed(seed)); with one, the warm-up's
  // draws must be erased the same way the fork path erases them.
  const auto rebuild_trial = [&](const campaign::TrialSpec& spec) {
    if (!warm_setup) {
      Scenario s = build_scenario(spec.seed, scenario);
      return trial(spec, s);
    }
    Scenario s = build_scenario(config.root_seed, scenario);
    warm_setup(s);
    s.sim->reseed(spec.seed);
    return trial(spec, s);
  };

  // Canonical warm snapshot, captured once on the calling thread. It is
  // what every worker forks from AND what recorded bundles embed — so the
  // bundles are identical for any worker count.
  Scenario probe = build_scenario(config.root_seed, scenario);
  if (warm_setup) warm_setup(probe);
  std::string why;
  const auto warm = Snapshot::capture(*probe.sim, &why);

  campaign::CampaignSummary summary;
  if (!warm.has_value()) {
    // The warm point is not quiescent for this scenario: fall back to the
    // rebuild path. Same trials, same seeds, same aggregates — no speedup.
    if (stats != nullptr) {
      stats->fork_used = false;
      stats->fallback_reason = why;
    }
    summary = campaign::run_campaign(config, rebuild_trial);
    return summary;
  }

  if (stats != nullptr) stats->fork_used = true;
  const std::uint64_t epoch = g_campaign_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  summary = campaign::run_campaign(config, [&](const campaign::TrialSpec& spec) {
    thread_local std::unique_ptr<WorkerState> tls;
    if (tls == nullptr || tls->epoch != epoch) {
      tls = std::make_unique<WorkerState>();
      tls->epoch = epoch;
      // A virgin topology build is enough even under a warm-up: restore()
      // applies the complete post-warm-up serialized state onto it.
      tls->scenario = build_scenario(config.root_seed, scenario);
    }
    Scenario& s = tls->scenario;
    std::string restore_why;
    if (!warm->restore(*s.sim, &restore_why)) {
      // Cannot happen for a scenario the probe just captured; stay correct
      // anyway by giving this trial a fresh rebuild-path run.
      return rebuild_trial(spec);
    }
    s.sim->reseed(spec.seed);
    return trial(spec, s);
  });

  if (record != nullptr && !record->dir.empty())
    record_bundles(config, scenario, *warm, summary, *record, stats);
  return summary;
}

}  // namespace blap::snapshot
