// fork_campaign.hpp — Monte-Carlo campaigns that fork trials from a warm
// snapshot instead of rebuilding the topology per trial.
//
// Every trial of a campaign repeats identical setup work: three devices
// powered on, HCI bring-up drained, page-scan schedules installed — and,
// when a WarmSetupFn is given, an arbitrarily expensive deterministic
// prefix on top (e.g. a full SSP P-256 bonding). run_fork_campaign() does
// that work ONCE per campaign: build the scenario, run the warm-up, take a
// strict Snapshot of the warm point, then per trial restore +
// Simulation::reseed(trial_seed) and hand the trial function a simulation
// that is byte-for-byte the one the rebuild path would have produced.
// Aggregate outputs are therefore identical to the rebuild path — the CI
// diffs them — while the per-trial cost drops to a restore. (Plain topology
// build is already cheap — ~30 µs after the scheduler-pooling work — so
// the big wins come from warm-ups that share an expensive prefix;
// bench_snapshot_fork quantifies both.)
//
// If the warm point turns out not to be quiescent (a scenario whose setup
// leaves events in flight), the runner falls back to per-trial rebuilds:
// same results, no speedup, reason reported via ForkStats.
//
// Record–replay: pass RecordOptions to dump a self-contained replay bundle
// (see replay.hpp) for every trial matching a predicate — by default the
// failures. Recording is a deterministic post-pass over the index-ordered
// results, so the set of bundles written is identical for any BLAP_JOBS.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "faults/fault_plan.hpp"
#include "snapshot/scenarios.hpp"

namespace blap::snapshot {

/// The per-trial body. Called with a simulation already restored to the
/// warm point and reseeded with spec.seed; must not keep references to the
/// scenario across calls (the next trial reuses it).
using ForkTrialFn =
    std::function<campaign::TrialResult(const campaign::TrialSpec&, Scenario&)>;

/// Optional deterministic warm-up executed on the freshly built scenario
/// before the warm snapshot is captured — e.g. bonding two devices so every
/// trial forks from an established-bond state instead of re-running SSP.
/// The warm-up may consume randomness: it always runs under the build seed
/// (config.root_seed), and the per-trial reseed erases its draws, so the
/// rebuild equivalence the CI diffs becomes
///   build(root_seed) + warm_setup + reseed(trial_seed) + body.
using WarmSetupFn = std::function<void(Scenario&)>;

struct RecordOptions {
  /// Destination directory (created if missing). Empty disables recording.
  std::string dir;
  /// Replay registry key naming what the trial body does — one of
  /// replay.hpp's known_trial_kind() values — so blap-replay can re-execute
  /// the bundle standalone.
  std::string trial_kind;
  /// Which trials to record. Null records the failures.
  std::function<bool(const campaign::TrialResult&)> predicate;
  /// The fault plan the trial body installed for this spec, if any; stored
  /// in the bundle so replay can re-install it.
  std::function<std::optional<faults::FaultPlan>(const campaign::TrialSpec&)> fault_plan;
  /// Cap on bundles written per campaign (first matches in index order).
  std::size_t limit = 8;
};

struct ForkStats {
  /// False when the runner fell back to per-trial rebuilds.
  bool fork_used = false;
  std::string fallback_reason;
  /// Bundles written by the recording post-pass, in trial-index order.
  std::vector<std::string> bundle_paths;
};

/// Run `config.trials` trials of `trial` over the scenario described by
/// `scenario`, forking each from a warm snapshot. Drop-in aggregate-
/// compatible with campaign::run_campaign over per-trial
/// build_scenario(spec.seed, scenario).
campaign::CampaignSummary run_fork_campaign(const campaign::CampaignConfig& config,
                                            const ScenarioParams& scenario,
                                            const ForkTrialFn& trial,
                                            const RecordOptions* record = nullptr,
                                            ForkStats* stats = nullptr,
                                            const WarmSetupFn& warm_setup = {});

/// True when BLAP_SNAPSHOT_FORK=1/true/on is set — the benches' switch
/// between the rebuild and fork paths.
[[nodiscard]] bool fork_mode_enabled();

}  // namespace blap::snapshot
