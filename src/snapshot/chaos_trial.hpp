// chaos_trial.hpp — the bonded-cell chaos trial body.
//
// One chaos trial answers a single question: with exactly these faults
// armed, does the stack either finish its work or tear itself down through
// a genuine timeout path — without ever violating a cross-layer invariant?
// The body is shared between the exploration driver
// (src/chaos/chaos_campaign.hpp) and bundle replay (replay.cpp's
// "chaos_bonded_cell" trial kind) so a violation found by the sweep replays
// through the exact code that found it.
//
// The trial forks from a bonded warm snapshot (accessory already paired to
// target — see bonded_warm_setup), arms the chaos plan BEFORE restoring so
// the snapshot-load failpoints are themselves explorable, installs a
// recovery-enabling fault plan plus the invariant monitor, runs the
// paper's link-key validation probe (PAN connect) and then drains the cell
// through explicit disconnects. Outcome classification:
//
//   kCompleted  — probe validated, cell drained clean, no violations.
//   kRecovered  — probe failed (the fault genuinely cost the connection)
//                 but every layer tore down clean; this is the *expected*
//                 result for most injected faults.
//   kCleanError — the fault fired before the trial body could start
//                 (snapshot restore refused with a typed error). The
//                 simulation may be half-restored; rebuild before reuse.
//   kStuck      — a link or ACL survived the drain window: some layer is
//                 waiting on a notification that never comes and has no
//                 timeout covering it. Always a finding.
//   kViolation  — the invariant monitor recorded at least one violation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/failpoint.hpp"
#include "invariants/monitor.hpp"
#include "snapshot/scenarios.hpp"
#include "snapshot/snapshot.hpp"

namespace blap::snapshot {

enum class ChaosOutcome : std::uint8_t {
  kCompleted = 0,
  kRecovered = 1,
  kCleanError = 2,
  kStuck = 3,
  kViolation = 4,
};

[[nodiscard]] const char* to_string(ChaosOutcome outcome);

struct ChaosTrialReport {
  ChaosOutcome outcome = ChaosOutcome::kCompleted;
  /// The PAN validation probe delivered its callback with success.
  bool body_success = false;
  /// Faults the plan actually fired (0 when an armed ordinal was never
  /// reached — possible for the second fault of a pair).
  std::uint64_t fired = 0;
  /// Every failpoint passage, fired or not.
  std::uint64_t total_hits = 0;
  /// Per-site passage counts; the recorder baseline reads its instance
  /// list out of this map.
  std::map<std::string, std::uint64_t> hits;
  SimTime virtual_end = 0;
  std::vector<invariants::Violation> violations;
};

/// Virtual window for the probe phase. Longer than the monitor's 120 s
/// link-table-agreement grace so any skew the fault opened during the
/// probe is adjudicated within the trial.
inline constexpr SimTime kChaosBodyWindow = 150 * kSecond;
/// Virtual window for the drain phase: covers supervision timeouts, host
/// watchdogs and pairing retries with room to spare, plus the same grace
/// argument as the body window.
inline constexpr SimTime kChaosDrainWindow = 150 * kSecond;

/// The bonded-cell scenario the chaos sweep explores (extraction topology,
/// Table II victim row 5 — same cell bench_snapshot_fork gates on).
[[nodiscard]] ScenarioParams bonded_cell_params();

/// Named warm setup "bonded": accessory pairs with target (full SSP
/// Numeric Comparison), then the stack drains to strict-quiescent bonded
/// idle. Deterministic under the build seed.
void bonded_warm_setup(Scenario& s);

/// Warm-setup registry for replay bundles (the `warm:` manifest key).
/// Returns nullptr for unknown names. Known: "bonded".
using WarmSetupFnPtr = void (*)(Scenario&);
[[nodiscard]] WarmSetupFnPtr resolve_warm_setup(const std::string& name);

/// The recovery-enabling fault plan both the chaos and fuzz trial bodies
/// install: enabled() (supervision timers, ARQ reports and host fault
/// recovery all arm) but behaviourally inert — one zero-length jam window,
/// which can never match and draws no randomness.
[[nodiscard]] faults::FaultPlan recovery_fault_plan();

/// Run one chaos trial: arm `plan`, restore `warm` onto `s` (same topology
/// it was captured from), reseed with `seed`, run probe + drain, classify.
/// The plan's counters are reset on entry; its hits land in the report.
[[nodiscard]] ChaosTrialReport run_chaos_trial(Scenario& s, const Snapshot& warm,
                                               std::uint64_t seed, chaos::ChaosPlan& plan);

}  // namespace blap::snapshot
