#include "snapshot/replay.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "chaos/failpoint.hpp"
#include "common/base64.hpp"
#include "common/state_io.hpp"
#include "core/page_blocking.hpp"
#include "snapshot/chaos_trial.hpp"
#include "snapshot/fuzz_trial.hpp"
#include "snapshot/snapshot.hpp"

namespace blap::snapshot {
namespace {

constexpr const char* kHeader = "blap-replay-bundle v1";

/// Line iterator that remembers where each line starts, so parse errors
/// can be reported by line number and byte offset.
class LineCursor {
 public:
  explicit LineCursor(const std::string& text) : text_(text) {}

  bool next(std::string& line) {
    if (pos_ >= text_.size()) return false;
    line_start_ = pos_;
    ++line_no_;
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      line = text_.substr(pos_);
      pos_ = text_.size();
    } else {
      line = text_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
    }
    return true;
  }

  [[nodiscard]] std::size_t line_no() const { return line_no_; }
  [[nodiscard]] std::size_t line_start() const { return line_start_; }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_no_ = 0;
  std::size_t line_start_ = 0;
};

void set_error(BundleError& error, const LineCursor& cursor, std::string message) {
  error.line = cursor.line_no();
  error.offset = cursor.line_start();
  error.message = std::move(message);
}

std::string encode_fault_plan(const faults::FaultPlan& plan) {
  state::StateWriter w;
  plan.save_state(w);
  return base64_encode(w.data());
}

std::optional<faults::FaultPlan> decode_fault_plan(const std::string& text) {
  const auto raw = base64_decode(text);
  if (!raw) return std::nullopt;
  state::StateReader r(*raw);
  faults::FaultPlan plan = faults::FaultPlan::load_state(r);
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return plan;
}

/// `%a` (hex-float) formatting: exact round trip for the verdict value.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  char* rest = nullptr;
  out = std::strtoull(text.c_str(), &rest, 10);
  return rest != text.c_str() && *rest == '\0';
}

bool parse_double(const std::string& text, double& out) {
  char* rest = nullptr;
  out = std::strtod(text.c_str(), &rest);
  return rest != text.c_str() && *rest == '\0';
}

}  // namespace

std::string BundleError::to_string() const {
  std::string out;
  if (!file.empty()) out += file + ":";
  out += std::to_string(line) + " (offset " + std::to_string(offset) + "): " + message;
  return out;
}

std::string ReplayBundle::to_text() const {
  std::string out;
  out += kHeader;
  out += "\nscenario: " + encode_scenario(scenario);
  out += "\nbuild_seed: " + std::to_string(build_seed);
  out += "\ntrial_index: " + std::to_string(trial_index);
  out += "\ntrial_seed: " + std::to_string(trial_seed);
  out += "\ntrial_kind: " + trial_kind;
  if (fault_plan.has_value()) out += "\nfault_plan: " + encode_fault_plan(*fault_plan);
  if (!chaos_faults.empty()) out += "\nchaos: " + chaos_faults;
  if (!warm_setup.empty()) out += "\nwarm: " + warm_setup;
  if (!fuzz_input.empty()) out += "\nfuzz_input: " + base64_encode(fuzz_input);
  out += "\nsuccess: ";
  out += expected_success ? "1" : "0";
  out += "\nvalue: " + format_double(expected_value);
  out += "\nvirtual_end_us: " + std::to_string(expected_virtual_end);
  if (!expected_metrics_json.empty()) {
    out += "\nmetrics: ";
    out += base64_encode(BytesView(
        reinterpret_cast<const std::uint8_t*>(expected_metrics_json.data()),
        expected_metrics_json.size()));
  }
  out += "\nsnapshot:\n";
  out += base64_encode(snapshot, /*line_width=*/76);
  out += "\n";
  return out;
}

std::optional<ReplayBundle> ReplayBundle::from_text(const std::string& text,
                                                    BundleError& error) {
  LineCursor cursor(text);
  std::string line;
  if (!cursor.next(line) || line != kHeader) {
    set_error(error, cursor, "missing bundle header line ('" + std::string(kHeader) + "')");
    return std::nullopt;
  }

  ReplayBundle bundle;
  bool have_scenario = false, have_trial_seed = false, have_kind = false;
  bool have_verdict = false, have_snapshot = false;
  while (cursor.next(line)) {
    if (line.empty()) continue;
    if (line == "snapshot:") {
      // Remember where the payload starts so a corrupt blob is reported at
      // its own offset, not at the last base64 line.
      const std::size_t block_line = cursor.line_no() + 1;
      const std::size_t block_offset = cursor.line_start() + line.size() + 1;
      std::string b64;
      while (cursor.next(line)) {
        if (b64.size() + line.size() > kMaxSnapshotBase64) {
          set_error(error, cursor,
                    "snapshot payload exceeds " + std::to_string(kMaxSnapshotBase64) +
                        " base64 bytes");
          return std::nullopt;
        }
        b64 += line;
      }
      if (b64.empty()) {
        error.line = block_line;
        error.offset = block_offset;
        error.message = "snapshot block is empty";
        return std::nullopt;
      }
      const auto raw = base64_decode(b64);
      if (!raw) {
        error.line = block_line;
        error.offset = block_offset;
        error.message = "snapshot payload is not valid base64 (truncated or corrupt)";
        return std::nullopt;
      }
      bundle.snapshot = *raw;
      have_snapshot = true;
      break;  // the snapshot block is defined to be last
    }
    const std::size_t colon = line.find(": ");
    if (colon == std::string::npos) {
      set_error(error, cursor, "malformed line (expected 'key: value'): " + line);
      return std::nullopt;
    }
    const std::string key = line.substr(0, colon);
    const std::string value = line.substr(colon + 2);
    if (value.size() > kMaxFieldLength) {
      set_error(error, cursor,
                "field '" + key + "' is " + std::to_string(value.size()) +
                    " bytes (limit " + std::to_string(kMaxFieldLength) + ")");
      return std::nullopt;
    }
    bool ok = true;
    if (key == "scenario") {
      const auto params = decode_scenario(value);
      ok = params.has_value();
      if (ok) bundle.scenario = *params;
      have_scenario = ok;
    } else if (key == "build_seed") {
      ok = parse_u64(value, bundle.build_seed);
    } else if (key == "trial_index") {
      std::uint64_t v = 0;
      ok = parse_u64(value, v);
      bundle.trial_index = static_cast<std::size_t>(v);
    } else if (key == "trial_seed") {
      ok = parse_u64(value, bundle.trial_seed);
      have_trial_seed = ok;
    } else if (key == "trial_kind") {
      bundle.trial_kind = value;
      have_kind = !value.empty();
    } else if (key == "fault_plan") {
      bundle.fault_plan = decode_fault_plan(value);
      ok = bundle.fault_plan.has_value();
    } else if (key == "chaos") {
      std::vector<chaos::FaultSite> faults;
      ok = chaos::decode_fault_sites(value, faults) && !faults.empty();
      if (ok) bundle.chaos_faults = value;
    } else if (key == "warm") {
      bundle.warm_setup = value;
      ok = !value.empty();
    } else if (key == "fuzz_input") {
      const auto raw = base64_decode(value);
      ok = raw.has_value() && !raw->empty();
      if (ok) bundle.fuzz_input = *raw;
    } else if (key == "success") {
      ok = value == "1" || value == "0";
      bundle.expected_success = value == "1";
      have_verdict = ok;
    } else if (key == "value") {
      ok = parse_double(value, bundle.expected_value);
    } else if (key == "virtual_end_us") {
      ok = parse_u64(value, bundle.expected_virtual_end);
    } else if (key == "metrics") {
      const auto raw = base64_decode(value);
      ok = raw.has_value();
      if (ok) bundle.expected_metrics_json.assign(raw->begin(), raw->end());
    } else {
      // Unknown key: refuse to half-understand a bundle.
      set_error(error, cursor, "unknown key '" + key + "'");
      return std::nullopt;
    }
    if (!ok) {
      set_error(error, cursor, "bad value for '" + key + "'");
      return std::nullopt;
    }
  }

  if (!have_scenario || !have_trial_seed || !have_kind || !have_verdict || !have_snapshot) {
    std::string missing;
    const auto need = [&](bool have, const char* name) {
      if (have) return;
      if (!missing.empty()) missing += ", ";
      missing += name;
    };
    need(have_scenario, "scenario");
    need(have_trial_seed, "trial_seed");
    need(have_kind, "trial_kind");
    need(have_verdict, "success");
    need(have_snapshot, "snapshot");
    set_error(error, cursor, "bundle is missing required field(s): " + missing);
    return std::nullopt;
  }
  return bundle;
}

std::optional<ReplayBundle> ReplayBundle::from_text(const std::string& text,
                                                    std::string* why) {
  BundleError error;
  auto bundle = from_text(text, error);
  if (!bundle && why != nullptr) *why = error.to_string();
  return bundle;
}

bool ReplayBundle::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_text();
  return static_cast<bool>(out);
}

std::optional<ReplayBundle> ReplayBundle::load_file(const std::string& path,
                                                    BundleError& error) {
  error.file = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error.message = "cannot open file";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_text(buf.str(), error);
}

std::optional<ReplayBundle> ReplayBundle::load_file(const std::string& path,
                                                    std::string* why) {
  BundleError error;
  auto bundle = load_file(path, error);
  if (!bundle && why != nullptr) *why = error.to_string();
  return bundle;
}

bool known_trial_kind(const std::string& kind) {
  return kind == "page_blocking_baseline" || kind == "page_blocking_attack" ||
         kind == "page_blocking_attack_metrics" || kind == "chaos_bonded_cell" ||
         kind == "fuzz_stack";
}

std::optional<ReplayOutcome> execute_trial(const std::string& kind, Scenario& s,
                                           const std::optional<faults::FaultPlan>& plan,
                                           bool want_trace) {
  if (!known_trial_kind(kind) || kind == "chaos_bonded_cell" || kind == "fuzz_stack")
    return std::nullopt;
  const bool want_metrics = kind == "page_blocking_attack_metrics";

  // Mirror the recording campaign's trial body order exactly: observability
  // first (so its dispatch counters cover the same window), then the fault
  // plan, then the attack. Tracing is observation-only, so turning it on
  // for --trace-out cannot perturb the verdict or the metrics.
  obs::Observer* obs = nullptr;
  if (want_metrics || want_trace)
    obs = &s.sim->enable_observability({.tracing = want_trace, .metrics = want_metrics});
  if (plan.has_value()) s.sim->set_fault_plan(*plan);

  ReplayOutcome out;
  out.executed = true;
  if (kind == "page_blocking_baseline") {
    out.result.success =
        core::PageBlockingAttack::baseline_trial(*s.sim, *s.attacker, *s.accessory,
                                                 *s.target);
  } else {
    const auto report =
        core::PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
    out.result.success = report.mitm_established;
  }
  out.result.virtual_end = s.sim->now();
  if (obs != nullptr) {
    if (want_metrics) {
      auto metrics = std::make_shared<obs::MetricsSnapshot>(obs->snapshot());
      out.metrics_json = metrics->to_json();
      out.result.metrics = std::move(metrics);
    }
    if (want_trace) out.trace_json = obs->recorder().to_chrome_json();
  }
  return out;
}

ReplayOutcome replay_bundle(const ReplayBundle& bundle, bool want_trace) {
  ReplayOutcome out;
  if (resolve_profile(bundle.scenario) == nullptr) {
    out.error = "scenario references a profile row that does not exist";
    return out;
  }

  Scenario s = build_scenario(bundle.build_seed, bundle.scenario);

  // The drift check rebuilds the warm state from scratch, so a bundle
  // recorded past a named warm setup (e.g. "bonded") replays that setup
  // before capturing.
  if (!bundle.warm_setup.empty()) {
    const WarmSetupFnPtr warm = resolve_warm_setup(bundle.warm_setup);
    if (warm == nullptr) {
      out.error = "unknown warm setup '" + bundle.warm_setup + "'";
      return out;
    }
    warm(s);
  }

  // Drift check: does today's code still produce the recorded warm bytes?
  std::string why;
  bool snapshot_matches = false;
  if (const auto rebuilt = Snapshot::capture(*s.sim, &why))
    snapshot_matches = rebuilt->bytes() == bundle.snapshot;

  const auto snap = Snapshot::from_bytes(bundle.snapshot, &why);
  if (!snap) {
    out.error = "recorded snapshot rejected: " + why;
    return out;
  }

  if (bundle.trial_kind == "chaos_bonded_cell") {
    // Chaos trials restore under their own armed plan (the snapshot-load
    // failpoints are part of the explored surface), so run_chaos_trial owns
    // the restore + reseed here.
    std::vector<chaos::FaultSite> faults;
    if (!chaos::decode_fault_sites(bundle.chaos_faults, faults) || faults.empty()) {
      out.error = "chaos trial kind without a valid 'chaos:' fault list";
      return out;
    }
    auto plan = chaos::ChaosPlan::inject(std::move(faults));
    const auto report = run_chaos_trial(s, *snap, bundle.trial_seed, plan);
    out.executed = true;
    out.result.success = report.outcome == ChaosOutcome::kCompleted ||
                         report.outcome == ChaosOutcome::kRecovered ||
                         report.outcome == ChaosOutcome::kCleanError;
    out.result.value = static_cast<double>(static_cast<int>(report.outcome));
    out.result.virtual_end = report.virtual_end;
    out.snapshot_matches = snapshot_matches;
    out.verdict_matches = out.result.success == bundle.expected_success &&
                          out.result.value == bundle.expected_value &&
                          out.result.virtual_end == bundle.expected_virtual_end;
    out.metrics_match = bundle.expected_metrics_json.empty();
    return out;
  }

  if (bundle.trial_kind == "fuzz_stack") {
    // Fuzz trials own their restore + reseed (the trial body is shared with
    // the fuzz engine's stack target — a pinned finding replays through the
    // exact code that found it). Verdict: success = clean execution, value =
    // violation count.
    const auto report = run_fuzz_stack_trial(s, *snap, bundle.trial_seed,
                                             bundle.fuzz_input);
    out.executed = true;
    out.result.success = !report.finding();
    out.result.value = static_cast<double>(report.violations.size());
    out.result.virtual_end = report.virtual_end;
    out.snapshot_matches = snapshot_matches;
    out.verdict_matches = out.result.success == bundle.expected_success &&
                          out.result.value == bundle.expected_value &&
                          out.result.virtual_end == bundle.expected_virtual_end;
    out.metrics_match = bundle.expected_metrics_json.empty();
    return out;
  }

  if (!snap->restore(*s.sim, &why)) {
    out.error = "recorded snapshot restore failed: " + why;
    return out;
  }
  s.sim->reseed(bundle.trial_seed);

  auto exec = execute_trial(bundle.trial_kind, s, bundle.fault_plan, want_trace);
  if (!exec) {
    out.error = "unknown trial kind '" + bundle.trial_kind + "'";
    return out;
  }
  out = std::move(*exec);
  out.snapshot_matches = snapshot_matches;
  out.verdict_matches = out.result.success == bundle.expected_success &&
                        out.result.value == bundle.expected_value &&
                        out.result.virtual_end == bundle.expected_virtual_end;
  out.metrics_match = bundle.expected_metrics_json.empty() ||
                      out.metrics_json == bundle.expected_metrics_json;
  return out;
}

}  // namespace blap::snapshot
