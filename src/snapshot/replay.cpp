#include "snapshot/replay.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/base64.hpp"
#include "common/state_io.hpp"
#include "core/page_blocking.hpp"
#include "snapshot/snapshot.hpp"

namespace blap::snapshot {
namespace {

constexpr const char* kHeader = "blap-replay-bundle v1";

void set_why(std::string* why, std::string text) {
  if (why != nullptr) *why = std::move(text);
}

std::string encode_fault_plan(const faults::FaultPlan& plan) {
  state::StateWriter w;
  plan.save_state(w);
  return base64_encode(w.data());
}

std::optional<faults::FaultPlan> decode_fault_plan(const std::string& text) {
  const auto raw = base64_decode(text);
  if (!raw) return std::nullopt;
  state::StateReader r(*raw);
  faults::FaultPlan plan = faults::FaultPlan::load_state(r);
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return plan;
}

/// `%a` (hex-float) formatting: exact round trip for the verdict value.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  char* rest = nullptr;
  out = std::strtoull(text.c_str(), &rest, 10);
  return rest != text.c_str() && *rest == '\0';
}

bool parse_double(const std::string& text, double& out) {
  char* rest = nullptr;
  out = std::strtod(text.c_str(), &rest);
  return rest != text.c_str() && *rest == '\0';
}

}  // namespace

std::string ReplayBundle::to_text() const {
  std::string out;
  out += kHeader;
  out += "\nscenario: " + encode_scenario(scenario);
  out += "\nbuild_seed: " + std::to_string(build_seed);
  out += "\ntrial_index: " + std::to_string(trial_index);
  out += "\ntrial_seed: " + std::to_string(trial_seed);
  out += "\ntrial_kind: " + trial_kind;
  if (fault_plan.has_value()) out += "\nfault_plan: " + encode_fault_plan(*fault_plan);
  out += "\nsuccess: ";
  out += expected_success ? "1" : "0";
  out += "\nvalue: " + format_double(expected_value);
  out += "\nvirtual_end_us: " + std::to_string(expected_virtual_end);
  if (!expected_metrics_json.empty()) {
    out += "\nmetrics: ";
    out += base64_encode(BytesView(
        reinterpret_cast<const std::uint8_t*>(expected_metrics_json.data()),
        expected_metrics_json.size()));
  }
  out += "\nsnapshot:\n";
  out += base64_encode(snapshot, /*line_width=*/76);
  out += "\n";
  return out;
}

std::optional<ReplayBundle> ReplayBundle::from_text(const std::string& text,
                                                    std::string* why) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    set_why(why, "missing bundle header line");
    return std::nullopt;
  }

  ReplayBundle bundle;
  bool have_scenario = false, have_trial_seed = false, have_kind = false;
  bool have_verdict = false, have_snapshot = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "snapshot:") {
      std::string b64;
      while (std::getline(in, line)) b64 += line;
      const auto raw = base64_decode(b64);
      if (!raw) {
        set_why(why, "snapshot base64 is malformed");
        return std::nullopt;
      }
      bundle.snapshot = *raw;
      have_snapshot = true;
      break;  // the snapshot block is defined to be last
    }
    const std::size_t colon = line.find(": ");
    if (colon == std::string::npos) {
      set_why(why, "malformed line: " + line);
      return std::nullopt;
    }
    const std::string key = line.substr(0, colon);
    const std::string value = line.substr(colon + 2);
    bool ok = true;
    if (key == "scenario") {
      const auto params = decode_scenario(value);
      ok = params.has_value();
      if (ok) bundle.scenario = *params;
      have_scenario = ok;
    } else if (key == "build_seed") {
      ok = parse_u64(value, bundle.build_seed);
    } else if (key == "trial_index") {
      std::uint64_t v = 0;
      ok = parse_u64(value, v);
      bundle.trial_index = static_cast<std::size_t>(v);
    } else if (key == "trial_seed") {
      ok = parse_u64(value, bundle.trial_seed);
      have_trial_seed = ok;
    } else if (key == "trial_kind") {
      bundle.trial_kind = value;
      have_kind = !value.empty();
    } else if (key == "fault_plan") {
      bundle.fault_plan = decode_fault_plan(value);
      ok = bundle.fault_plan.has_value();
    } else if (key == "success") {
      ok = value == "1" || value == "0";
      bundle.expected_success = value == "1";
      have_verdict = ok;
    } else if (key == "value") {
      ok = parse_double(value, bundle.expected_value);
    } else if (key == "virtual_end_us") {
      ok = parse_u64(value, bundle.expected_virtual_end);
    } else if (key == "metrics") {
      const auto raw = base64_decode(value);
      ok = raw.has_value();
      if (ok) bundle.expected_metrics_json.assign(raw->begin(), raw->end());
    } else {
      ok = false;  // unknown key: refuse to half-understand a bundle
    }
    if (!ok) {
      set_why(why, "bad value for '" + key + "'");
      return std::nullopt;
    }
  }

  if (!have_scenario || !have_trial_seed || !have_kind || !have_verdict || !have_snapshot) {
    set_why(why, "bundle is missing a required field");
    return std::nullopt;
  }
  return bundle;
}

bool ReplayBundle::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_text();
  return static_cast<bool>(out);
}

std::optional<ReplayBundle> ReplayBundle::load_file(const std::string& path,
                                                    std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_why(why, "cannot open '" + path + "'");
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_text(buf.str(), why);
}

bool known_trial_kind(const std::string& kind) {
  return kind == "page_blocking_baseline" || kind == "page_blocking_attack" ||
         kind == "page_blocking_attack_metrics";
}

std::optional<ReplayOutcome> execute_trial(const std::string& kind, Scenario& s,
                                           const std::optional<faults::FaultPlan>& plan,
                                           bool want_trace) {
  if (!known_trial_kind(kind)) return std::nullopt;
  const bool want_metrics = kind == "page_blocking_attack_metrics";

  // Mirror the recording campaign's trial body order exactly: observability
  // first (so its dispatch counters cover the same window), then the fault
  // plan, then the attack. Tracing is observation-only, so turning it on
  // for --trace-out cannot perturb the verdict or the metrics.
  obs::Observer* obs = nullptr;
  if (want_metrics || want_trace)
    obs = &s.sim->enable_observability({.tracing = want_trace, .metrics = want_metrics});
  if (plan.has_value()) s.sim->set_fault_plan(*plan);

  ReplayOutcome out;
  out.executed = true;
  if (kind == "page_blocking_baseline") {
    out.result.success =
        core::PageBlockingAttack::baseline_trial(*s.sim, *s.attacker, *s.accessory,
                                                 *s.target);
  } else {
    const auto report =
        core::PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
    out.result.success = report.mitm_established;
  }
  out.result.virtual_end = s.sim->now();
  if (obs != nullptr) {
    if (want_metrics) {
      auto metrics = std::make_shared<obs::MetricsSnapshot>(obs->snapshot());
      out.metrics_json = metrics->to_json();
      out.result.metrics = std::move(metrics);
    }
    if (want_trace) out.trace_json = obs->recorder().to_chrome_json();
  }
  return out;
}

ReplayOutcome replay_bundle(const ReplayBundle& bundle, bool want_trace) {
  ReplayOutcome out;
  if (resolve_profile(bundle.scenario) == nullptr) {
    out.error = "scenario references a profile row that does not exist";
    return out;
  }

  Scenario s = build_scenario(bundle.build_seed, bundle.scenario);

  // Drift check: does today's code still produce the recorded warm bytes?
  std::string why;
  bool snapshot_matches = false;
  if (const auto rebuilt = Snapshot::capture(*s.sim, &why))
    snapshot_matches = rebuilt->bytes() == bundle.snapshot;

  const auto snap = Snapshot::from_bytes(bundle.snapshot, &why);
  if (!snap) {
    out.error = "recorded snapshot rejected: " + why;
    return out;
  }
  if (!snap->restore(*s.sim, &why)) {
    out.error = "recorded snapshot restore failed: " + why;
    return out;
  }
  s.sim->reseed(bundle.trial_seed);

  auto exec = execute_trial(bundle.trial_kind, s, bundle.fault_plan, want_trace);
  if (!exec) {
    out.error = "unknown trial kind '" + bundle.trial_kind + "'";
    return out;
  }
  out = std::move(*exec);
  out.snapshot_matches = snapshot_matches;
  out.verdict_matches = out.result.success == bundle.expected_success &&
                        out.result.value == bundle.expected_value &&
                        out.result.virtual_end == bundle.expected_virtual_end;
  out.metrics_match = bundle.expected_metrics_json.empty() ||
                      out.metrics_json == bundle.expected_metrics_json;
  return out;
}

}  // namespace blap::snapshot
