#include "snapshot/chaos_trial.hpp"

namespace blap::snapshot {

const char* to_string(ChaosOutcome outcome) {
  switch (outcome) {
    case ChaosOutcome::kCompleted: return "completed";
    case ChaosOutcome::kRecovered: return "recovered";
    case ChaosOutcome::kCleanError: return "clean-error";
    case ChaosOutcome::kStuck: return "stuck";
    case ChaosOutcome::kViolation: return "violation";
  }
  return "?";
}

ScenarioParams bonded_cell_params() {
  ScenarioParams params;
  params.kind = ScenarioParams::Kind::kExtraction;
  params.profile_index = 5;
  return params;
}

void bonded_warm_setup(Scenario& s) {
  // Same warm-up the snapshot-fork bench uses for its bonded cell: full SSP
  // Numeric Comparison (P-256 ECDH) then drain to strict-quiescent idle.
  s.accessory->host().pair(s.target->address(), [](hci::Status) {});
  s.sim->run_for(30 * kSecond);
  s.sim->run_until_idle();
}

WarmSetupFnPtr resolve_warm_setup(const std::string& name) {
  if (name == "bonded") return &bonded_warm_setup;
  return nullptr;
}

/// A fault plan that is enabled() — supervision timers, ARQ reports and
/// host fault recovery all arm — but never touches a frame: one zero-length
/// jam window, which can never match (judge tests now < end) and, being a
/// jam, draws no randomness. Injected chaos faults then have every genuine
/// timeout/retry path available to recover through, at zero behavioural
/// cost on the fault-free path.
faults::FaultPlan recovery_fault_plan() {
  faults::FaultPlan plan;
  plan.jam_windows.push_back(faults::JamWindow{0, 0});
  return plan;
}

ChaosTrialReport run_chaos_trial(Scenario& s, const Snapshot& warm, std::uint64_t seed,
                                 chaos::ChaosPlan& plan) {
  ChaosTrialReport report;
  plan.reset_counts();
  // Arm before restoring: the snapshot.load.* failpoints sit inside the
  // restore path and are part of the explored surface.
  chaos::ScopedChaosPlan armed(plan);

  const auto finish_counts = [&] {
    report.fired = plan.fired();
    report.total_hits = plan.total_hits();
    report.hits = plan.hits();
  };

  std::string why;
  if (!warm.restore(*s.sim, &why)) {
    // The typed-error path: a load failpoint (or genuine corruption) was
    // refused. snapshot.load.truncated fires mid-commit, so the simulation
    // may be half-restored — the caller must rebuild before reusing it.
    report.outcome = ChaosOutcome::kCleanError;
    report.virtual_end = s.sim->now();
    finish_counts();
    return report;
  }
  s.sim->reseed(seed);
  s.sim->set_fault_plan(recovery_fault_plan());

  invariants::InvariantMonitor::Config monitor_config;
  if (s.attacker != nullptr) monitor_config.exempt.push_back(s.attacker->address());
  invariants::InvariantMonitor monitor(*s.sim, monitor_config);
  monitor.install();
  // kRewind restore truncates the medium's sniffer list, so the sniffer
  // must attach after the restore above (and a fresh monitor per trial
  // keeps violation attribution unambiguous).
  monitor.attach_sniffer();
  monitor.reset();

  // Probe phase: the paper's link-key validation probe — open PAN over the
  // stored bond (authentication reuses the link key, no ECDH) — followed by
  // the §III sensitive-data stages (PBAP pull, L2CAP echo keep-alive). The
  // extra profile traffic is deliberate: it widens the explorable surface
  // (every ACL round trip is another ordinal at the frame/ARQ/supervision
  // sites) and exercises recovery on an already-degraded cell.
  bool validated = false;
  s.accessory->host().connect_pan(s.target->address(),
                                  [&validated](bool ok) { validated = ok; });
  s.sim->run_for(kChaosBodyWindow / 3);
  s.accessory->host().pull_phonebook(s.target->address(), [](auto) {});
  s.sim->run_for(kChaosBodyWindow / 3);
  s.accessory->host().send_echo(s.target->address(), [] {});
  s.sim->run_for(kChaosBodyWindow - 2 * (kChaosBodyWindow / 3));

  // Drain phase: PAN keep-alive timers re-arm forever, so the cell never
  // goes scheduler-idle on its own. Tear every remaining ACL down
  // explicitly, then give all timeout paths (supervision, watchdogs,
  // retries) a full window to run dry.
  for (const auto& device : s.sim->devices())
    for (const auto& acl : device->host().acls()) device->host().disconnect(acl.peer);
  s.sim->run_for(kChaosDrainWindow);
  monitor.check_now();

  report.body_success = validated;
  report.virtual_end = s.sim->now();
  report.violations = monitor.violations();
  finish_counts();

  bool drained = s.sim->medium().link_count() == 0;
  for (const auto& device : s.sim->devices()) {
    if (!device->host().acls().empty()) drained = false;
    if (!device->controller().audit_links().empty()) drained = false;
  }

  if (!report.violations.empty())
    report.outcome = ChaosOutcome::kViolation;
  else if (!drained)
    report.outcome = ChaosOutcome::kStuck;
  else
    report.outcome = validated ? ChaosOutcome::kCompleted : ChaosOutcome::kRecovered;
  return report;
}

}  // namespace blap::snapshot
