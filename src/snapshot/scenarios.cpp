#include "snapshot/scenarios.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace blap::snapshot {

Scenario build_abc_scenario(std::uint64_t seed, const core::DeviceProfile& victim_profile,
                            core::TransportKind accessory_transport,
                            bool accessory_has_dump, double baseline_bias) {
  Scenario s;
  s.sim = std::make_unique<core::Simulation>(seed);

  core::DeviceSpec a =
      core::attacker_profile().to_spec("attacker-A", *BdAddr::parse("aa:aa:aa:00:00:01"));
  a.controller.page_scan_interval = static_cast<SimTime>(1.28 * kSecond);

  core::DeviceSpec c = core::accessory_profile().to_spec(
      "accessory-C", *BdAddr::parse("00:1b:7d:da:71:0a"),
      ClassOfDevice(ClassOfDevice::kHandsFree));
  c.transport = accessory_transport;
  c.host.hci_dump_available = accessory_has_dump;
  c.host.io_capability = hci::IoCapability::kNoInputNoOutput;
  c.controller.page_scan_interval =
      core::accessory_interval_for_bias(baseline_bias, a.controller.page_scan_interval);

  core::DeviceSpec m =
      victim_profile.to_spec("victim-M", *BdAddr::parse("48:90:12:34:56:78"));

  s.attacker = &s.sim->add_device(a);
  s.accessory = &s.sim->add_device(c);
  s.target = &s.sim->add_device(m);
  return s;
}

Scenario build_extraction_scenario(std::uint64_t seed,
                                   const core::DeviceProfile& accessory_profile_row) {
  Scenario s;
  s.sim = std::make_unique<core::Simulation>(seed);
  core::DeviceSpec a =
      core::attacker_profile().to_spec("attacker-A", *BdAddr::parse("aa:aa:aa:00:00:01"));
  core::DeviceSpec c = accessory_profile_row.to_spec(
      "accessory-C", *BdAddr::parse("00:1b:7d:da:71:0a"),
      ClassOfDevice(ClassOfDevice::kHandsFree));
  core::DeviceSpec m =
      core::table2_profiles()[5].to_spec("victim-M", *BdAddr::parse("48:90:12:34:56:78"));
  s.attacker = &s.sim->add_device(a);
  s.accessory = &s.sim->add_device(c);
  s.target = &s.sim->add_device(m);
  return s;
}

const core::DeviceProfile* resolve_profile(const ScenarioParams& params) {
  const auto& rows = params.table == ProfileTable::kTable1 ? core::table1_profiles()
                                                           : core::table2_profiles();
  if (params.profile_index >= rows.size()) return nullptr;
  return &rows[params.profile_index];
}

Scenario build_scenario(std::uint64_t seed, const ScenarioParams& params) {
  const core::DeviceProfile* row = resolve_profile(params);
  assert(row != nullptr && "profile_index out of range — validate with resolve_profile()");
  if (params.kind == ScenarioParams::Kind::kExtraction)
    return build_extraction_scenario(seed, *row);
  return build_abc_scenario(seed, *row, params.accessory_transport,
                            params.accessory_has_dump, params.baseline_bias);
}

std::string encode_scenario(const ScenarioParams& params) {
  char bias[64];
  // %a: exact hex-float round trip through strtod, independent of locale
  // and of decimal shortest-representation subtleties.
  std::snprintf(bias, sizeof bias, "%a", params.baseline_bias);
  std::string out;
  out += "kind=";
  out += params.kind == ScenarioParams::Kind::kExtraction ? "extraction" : "abc";
  out += " table=";
  out += params.table == ProfileTable::kTable1 ? "1" : "2";
  out += " profile=" + std::to_string(params.profile_index);
  out += " transport=";
  out += params.accessory_transport == core::TransportKind::kUsb ? "usb" : "uart";
  out += " dump=";
  out += params.accessory_has_dump ? "1" : "0";
  out += " bias=";
  out += bias;
  return out;
}

std::optional<ScenarioParams> decode_scenario(std::string_view text) {
  ScenarioParams params;
  bool have_kind = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos >= text.size()) break;
    std::size_t end = text.find(' ', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view token = text.substr(pos, end - pos);
    pos = end;

    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = token.substr(0, eq);
    const std::string value(token.substr(eq + 1));
    if (value.empty()) return std::nullopt;

    if (key == "kind") {
      if (value == "abc") params.kind = ScenarioParams::Kind::kAbc;
      else if (value == "extraction") params.kind = ScenarioParams::Kind::kExtraction;
      else return std::nullopt;
      have_kind = true;
    } else if (key == "table") {
      if (value == "1") params.table = ProfileTable::kTable1;
      else if (value == "2") params.table = ProfileTable::kTable2;
      else return std::nullopt;
    } else if (key == "profile") {
      char* rest = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &rest, 10);
      if (rest == value.c_str() || *rest != '\0') return std::nullopt;
      params.profile_index = static_cast<std::size_t>(n);
    } else if (key == "transport") {
      if (value == "uart") params.accessory_transport = core::TransportKind::kUart;
      else if (value == "usb") params.accessory_transport = core::TransportKind::kUsb;
      else return std::nullopt;
    } else if (key == "dump") {
      if (value == "1") params.accessory_has_dump = true;
      else if (value == "0") params.accessory_has_dump = false;
      else return std::nullopt;
    } else if (key == "bias") {
      char* rest = nullptr;
      params.baseline_bias = std::strtod(value.c_str(), &rest);
      if (rest == value.c_str() || *rest != '\0') return std::nullopt;
    } else {
      return std::nullopt;  // unknown key: refuse to half-understand a bundle
    }
  }
  if (!have_kind || resolve_profile(params) == nullptr) return std::nullopt;
  return params;
}

}  // namespace blap::snapshot
