// Reproduces FIG. 5: "Link key extraction attack procedure" — the seven
// numbered steps of §IV-C, each checked against the simulator's ground truth:
//
//   1) A arranges HCI recording on C,
//   2) A spoofs M's BD_ADDR,
//   3) C connects and initiates LMP authentication with "M" (= A),
//   4) C's host answers the key request; the key lands in the dump,
//   5) A drops the link at the start of LMP authentication (stall, timeout —
//      no authentication failure, C's bond survives),
//   6) A extracts the key from the dump,
//   7) A impersonates C against M and mines data (PAN connection).
#include "bench_util.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  banner("FIG. 5 — Link key extraction attack procedure (step-by-step)");

  // C is an Android phone acting as the soft-target accessory (the paper's
  // HCI-dump experiments use Android devices as C).
  Scenario s = make_extraction_scenario(5, core::table1_profiles()[0]);
  core::LinkKeyExtractionOptions options;  // defaults: HCI dump + validation
  const auto report =
      core::LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);

  struct Step {
    const char* description;
    bool ok;
  } steps[] = {
      {"0) precondition: C and M are bonded (share a link key)",
       report.bonded_precondition},
      {"1) A records HCI data on C via the HCI dump", report.keys_in_capture > 0},
      {"2) A changes its BDADDR to impersonate M", true},
      {"3) C connects and initiates LMP authentication toward \"M\"",
       report.keys_in_capture > 0},
      {"4) C's host replies with the link key; the key is logged",
       report.key_extracted},
      {"5) A stalls; link drops by timeout, NOT auth failure; C's bond survives",
       report.c_bond_survived &&
           report.c_auth_status != hci::Status::kAuthenticationFailure},
      {"6) A extracts the key and it matches C's bonded key",
       report.key_matches_bond},
      {"7) A impersonates C and connects to M's PAN without re-pairing",
       report.impersonation_succeeded},
  };

  bool all_ok = true;
  for (const auto& step : steps) {
    std::printf("  [%s] %s\n", step.ok ? "PASS" : "FAIL", step.description);
    all_ok &= step.ok;
  }

  std::printf("\n  extracted key : %s (via %s)\n", hex(report.extracted_key).c_str(),
              report.capture_channel.c_str());
  std::printf("  C's auth saw  : %s\n", hci::to_string(report.c_auth_status));
  std::printf("\nFig. 5 procedure %s\n", all_ok ? "HOLDS" : "DOES NOT HOLD");
  return all_ok ? 0 : 1;
}
