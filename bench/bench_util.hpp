// bench_util.hpp — shared scenario builders for the reproduction benches.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "campaign/campaign.hpp"
#include "core/link_key_extraction.hpp"
#include "core/page_blocking.hpp"
#include "core/profiles.hpp"

namespace blap::bench {

/// Explicit, thread-safe seed stream for benches that burn seeds ad hoc
/// (Google-benchmark fixtures run the same function from multiple threads
/// under --benchmark_threads; a plain `static std::uint64_t seed++` there is
/// a data race AND makes trials order-dependent). Campaign-style benches
/// should prefer per-index seeds via blap::campaign::trial_seed.
class SeedStream {
 public:
  explicit SeedStream(std::uint64_t start) : next_(start) {}
  std::uint64_t next() { return next_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> next_;
};

/// The sequential seed derivation the pre-campaign benches used (one global
/// counter across all cells): trial i of a campaign rooted at `root` gets
/// seed root+i. Keeps aggregate outputs bit-identical to the historical
/// single-threaded loops for the same root seeds.
inline std::uint64_t sequential_seed(std::uint64_t root, std::size_t index) {
  return root + index;
}

struct Scenario {
  std::unique_ptr<core::Simulation> sim;
  core::Device* attacker = nullptr;
  core::Device* accessory = nullptr;
  core::Device* target = nullptr;
};

/// Standard A/C/M triple: Nexus 5x attacker, hands-free accessory, victim
/// from `victim_profile`. `baseline_bias` calibrates the accessory's page
/// race for Table II baselines.
inline Scenario make_scenario(std::uint64_t seed, const core::DeviceProfile& victim_profile,
                              core::TransportKind accessory_transport,
                              bool accessory_has_dump, double baseline_bias = 0.5) {
  Scenario s;
  s.sim = std::make_unique<core::Simulation>(seed);

  core::DeviceSpec a =
      core::attacker_profile().to_spec("attacker-A", *BdAddr::parse("aa:aa:aa:00:00:01"));
  a.controller.page_scan_interval = static_cast<SimTime>(1.28 * kSecond);

  core::DeviceSpec c = core::accessory_profile().to_spec(
      "accessory-C", *BdAddr::parse("00:1b:7d:da:71:0a"),
      ClassOfDevice(ClassOfDevice::kHandsFree));
  c.transport = accessory_transport;
  c.host.hci_dump_available = accessory_has_dump;
  c.host.io_capability = hci::IoCapability::kNoInputNoOutput;
  c.controller.page_scan_interval =
      core::accessory_interval_for_bias(baseline_bias, a.controller.page_scan_interval);

  core::DeviceSpec m = victim_profile.to_spec("victim-M", *BdAddr::parse("48:90:12:34:56:78"));

  s.attacker = &s.sim->add_device(a);
  s.accessory = &s.sim->add_device(c);
  s.target = &s.sim->add_device(m);
  return s;
}

/// Accessory variant with a confirm-capable UI (for extraction scenarios,
/// where C must pass Numeric Comparison pairing with M).
inline Scenario make_extraction_scenario(std::uint64_t seed,
                                         const core::DeviceProfile& accessory_profile_row) {
  Scenario s;
  s.sim = std::make_unique<core::Simulation>(seed);
  core::DeviceSpec a =
      core::attacker_profile().to_spec("attacker-A", *BdAddr::parse("aa:aa:aa:00:00:01"));
  core::DeviceSpec c = accessory_profile_row.to_spec(
      "accessory-C", *BdAddr::parse("00:1b:7d:da:71:0a"),
      ClassOfDevice(ClassOfDevice::kHandsFree));
  core::DeviceSpec m =
      core::table2_profiles()[5].to_spec("victim-M", *BdAddr::parse("48:90:12:34:56:78"));
  s.attacker = &s.sim->add_device(a);
  s.accessory = &s.sim->add_device(c);
  s.target = &s.sim->add_device(m);
  return s;
}

/// Trial count: paper uses 100; override with BLAP_TRIALS for quick runs.
inline int trial_count(int default_trials = 100) {
  if (const char* env = std::getenv("BLAP_TRIALS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return default_trials;
}

inline void banner(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

}  // namespace blap::bench
