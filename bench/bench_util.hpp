// bench_util.hpp — shared scenario builders for the reproduction benches.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "campaign/campaign.hpp"
#include "core/link_key_extraction.hpp"
#include "core/page_blocking.hpp"
#include "core/profiles.hpp"
#include "snapshot/scenarios.hpp"

namespace blap::bench {

/// Explicit, thread-safe seed stream for benches that burn seeds ad hoc
/// (Google-benchmark fixtures run the same function from multiple threads
/// under --benchmark_threads; a plain `static std::uint64_t seed++` there is
/// a data race AND makes trials order-dependent). Campaign-style benches
/// should prefer per-index seeds via blap::campaign::trial_seed.
class SeedStream {
 public:
  explicit SeedStream(std::uint64_t start) : next_(start) {}
  std::uint64_t next() { return next_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> next_;
};

/// The sequential seed derivation the pre-campaign benches used (one global
/// counter across all cells): trial i of a campaign rooted at `root` gets
/// seed root+i. Keeps aggregate outputs bit-identical to the historical
/// single-threaded loops for the same root seeds.
inline std::uint64_t sequential_seed(std::uint64_t root, std::size_t index) {
  return root + index;
}

/// The scenario triple and its builders live in the shared registry
/// (src/snapshot/scenarios.hpp) so the benches, the snapshot-fork campaign
/// runner and blap-replay all construct byte-identical topologies. These
/// aliases keep the historical bench-side names.
using Scenario = snapshot::Scenario;

/// Standard A/C/M triple: Nexus 5x attacker, hands-free accessory, victim
/// from `victim_profile`. `baseline_bias` calibrates the accessory's page
/// race for Table II baselines.
inline Scenario make_scenario(std::uint64_t seed, const core::DeviceProfile& victim_profile,
                              core::TransportKind accessory_transport,
                              bool accessory_has_dump, double baseline_bias = 0.5) {
  return snapshot::build_abc_scenario(seed, victim_profile, accessory_transport,
                                      accessory_has_dump, baseline_bias);
}

/// Accessory variant with a confirm-capable UI (for extraction scenarios,
/// where C must pass Numeric Comparison pairing with M).
inline Scenario make_extraction_scenario(std::uint64_t seed,
                                         const core::DeviceProfile& accessory_profile_row) {
  return snapshot::build_extraction_scenario(seed, accessory_profile_row);
}

/// Trial count: paper uses 100; override with BLAP_TRIALS for quick runs.
inline int trial_count(int default_trials = 100) {
  if (const char* env = std::getenv("BLAP_TRIALS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return default_trials;
}

inline void banner(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

}  // namespace blap::bench
