// Reproduces TABLE II: "Success rates of MITM connection establishment".
//
// For each of the paper's seven victim devices:
//   * baseline ("without page blocking"): the attacker spoofs C's BD_ADDR
//     and waits; M pages; the page-scan race decides who answers first.
//     100 trials, fresh simulation per trial. Paper: 42-60 %.
//   * attack ("with page blocking"): the attacker pages M first and holds a
//     PLOC; M's pairing request lands on the attacker deterministically.
//     Paper: 100 %.
//
// Trials run through the campaign engine: BLAP_TRIALS overrides the paper's
// 100 per cell, BLAP_JOBS sets the worker count (default: all cores). Seeds
// are per-trial-index (root + index, the historical sequential stream), so
// the aggregate numbers are bit-identical for every BLAP_JOBS value — and
// identical to the pre-campaign sequential bench. Set BLAP_JSON=<path> to
// also dump the per-cell aggregate JSON. BLAP_LOSS=<p> (0 < p <= 1) runs
// every trial over a lossy channel (iid loss p through the fault layer);
// unset or 0 leaves the fault layer untouched and the output byte-identical
// to the historical bench. BLAP_SNAPSHOT_FORK=1 switches every cell from
// per-trial rebuilds to snapshot forking (build the topology once per
// worker, restore+reseed per trial) — the aggregate output is byte-
// identical either way, which the CI diffs.
#include "bench_util.hpp"

#include <fstream>

#include "faults/fault_plan.hpp"
#include "snapshot/fork_campaign.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  const int baseline_trials = trial_count(100);
  const int attack_trials = trial_count(100);
  const bool fork_mode = snapshot::fork_mode_enabled();
  // Either path runs the same trial body on the same warm state: rebuild
  // constructs it from spec.seed, fork restores it and reseeds.
  const auto run_cell = [fork_mode](const campaign::CampaignConfig& cfg,
                                    const snapshot::ScenarioParams& params,
                                    const snapshot::ForkTrialFn& trial) {
    if (fork_mode) return snapshot::run_fork_campaign(cfg, params, trial);
    return campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
      Scenario s = snapshot::build_scenario(spec.seed, params);
      return trial(spec, s);
    });
  };
  const char* loss_env = std::getenv("BLAP_LOSS");
  const double loss = loss_env != nullptr ? std::atof(loss_env) : 0.0;
  // BLAP_LOSS=0 still installs the (disabled) plan — deliberately, so the
  // fault layer's byte-identity contract is exercised at bench scale: the
  // output must match a run that never set BLAP_LOSS at all.
  const auto apply_faults = [loss_env, loss](Scenario& s, std::uint64_t seed) {
    if (loss_env == nullptr) return;
    faults::FaultPlan plan;
    if (loss > 0.0) {
      plan.seed = seed;
      plan.loss = loss;
    }
    s.sim->set_fault_plan(plan);
  };

  banner("TABLE II — Success rates of MITM connection establishment");
  if (loss > 0.0) std::printf("(fault layer on: iid channel loss %.0f%%)\n", 100.0 * loss);
  if (fork_mode) std::fprintf(stderr, "[campaign] snapshot-fork mode\n");
  std::printf("%-26s | %-10s %-12s | %-10s %-12s\n", "", "paper", "measured", "paper",
              "measured");
  std::printf("%-26s | %-23s | %-23s\n", "Device", "without page blocking",
              "with page blocking");
  std::printf("%s\n", std::string(78, '-').c_str());

  bool shape_holds = true;
  std::uint64_t seed = 10'000;
  std::string json_dump;
  std::uint64_t wall_ns_total = 0;
  unsigned jobs_used = 1;
  const auto& profiles = core::table2_profiles();
  for (std::size_t profile_index = 0; profile_index < profiles.size(); ++profile_index) {
    const auto& profile = profiles[profile_index];
    snapshot::ScenarioParams params;
    params.kind = snapshot::ScenarioParams::Kind::kAbc;
    params.table = snapshot::ProfileTable::kTable2;
    params.profile_index = profile_index;
    params.accessory_transport = core::TransportKind::kUart;
    params.accessory_has_dump = true;
    params.baseline_bias = profile.baseline_mitm_success;

    campaign::CampaignConfig cfg;
    cfg.seed_fn = sequential_seed;

    // Baseline: the race.
    cfg.label = profile.model + " baseline";
    cfg.trials = static_cast<std::size_t>(baseline_trials);
    cfg.root_seed = seed;
    seed += static_cast<std::uint64_t>(baseline_trials);
    const auto baseline =
        run_cell(cfg, params, [&](const campaign::TrialSpec& spec, Scenario& s) {
          apply_faults(s, spec.seed);
          campaign::TrialResult r;
          r.success = core::PageBlockingAttack::baseline_trial(*s.sim, *s.attacker,
                                                               *s.accessory, *s.target);
          r.virtual_end = s.sim->now();
          return r;
        });

    // Attack: PLOC.
    cfg.label = profile.model + " page blocking";
    cfg.trials = static_cast<std::size_t>(attack_trials);
    cfg.root_seed = seed;
    seed += static_cast<std::uint64_t>(attack_trials);
    const auto attack =
        run_cell(cfg, params, [&](const campaign::TrialSpec& spec, Scenario& s) {
          apply_faults(s, spec.seed);
          const auto report = core::PageBlockingAttack::run(*s.sim, *s.attacker,
                                                            *s.accessory, *s.target, {});
          campaign::TrialResult r;
          r.success = report.mitm_established;
          r.virtual_end = s.sim->now();
          return r;
        });

    const double baseline_rate = 100.0 * baseline.success_rate;
    const double attack_rate = 100.0 * attack.success_rate;
    std::printf("%-26s | %7.0f%%   %9.1f%%   | %7s    %9.1f%%\n",
                (profile.model + " (" + profile.os + ")").c_str(),
                100.0 * profile.baseline_mitm_success, baseline_rate, "100%", attack_rate);

    wall_ns_total += baseline.wall_total_ns + attack.wall_total_ns;
    jobs_used = baseline.jobs_used;
    json_dump += baseline.to_json();
    json_dump += attack.to_json();

    // Shape check: baseline within a binomial-noise band of the paper's
    // value (3.5 sigma, floored at the historical 15-point band so the
    // 100-trial verdict is unchanged; a fixed band misfires at the quick
    // BLAP_TRIALS CI settings); attack exactly 100 %. The paper's numbers
    // assume a clean channel, so a lossy BLAP_LOSS run measures degradation
    // instead of asserting shape (bench_fault_sweep owns that story).
    if (loss == 0.0) {
      const double expected = 100.0 * profile.baseline_mitm_success;
      const double sigma = 100.0 * std::sqrt(profile.baseline_mitm_success *
                                             (1.0 - profile.baseline_mitm_success) /
                                             baseline_trials);
      if (std::abs(baseline_rate - expected) > std::max(15.0, 3.5 * sigma))
        shape_holds = false;
      if (attack_rate < 100.0) shape_holds = false;
    }
  }

  std::printf("\n(baseline: %d trials/device, attack: %d trials/device; "
              "paper used 100. Shape %s.)\n",
              baseline_trials, attack_trials, shape_holds ? "HOLDS" : "DOES NOT HOLD");
  std::fprintf(stderr, "[campaign] full sweep: %.3f s wall on %u worker(s)\n",
               static_cast<double>(wall_ns_total) * 1e-9, jobs_used);

  if (const char* path = std::getenv("BLAP_JSON")) {
    std::ofstream out(path);
    out << json_dump;
    std::fprintf(stderr, "[campaign] aggregate JSON written to %s\n", path);
  }
  return shape_holds ? 0 : 1;
}
