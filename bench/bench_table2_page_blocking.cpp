// Reproduces TABLE II: "Success rates of MITM connection establishment".
//
// For each of the paper's seven victim devices:
//   * baseline ("without page blocking"): the attacker spoofs C's BD_ADDR
//     and waits; M pages; the page-scan race decides who answers first.
//     100 trials, fresh simulation per trial. Paper: 42-60 %.
//   * attack ("with page blocking"): the attacker pages M first and holds a
//     PLOC; M's pairing request lands on the attacker deterministically.
//     Paper: 100 %.
//
// Trials default to the paper's 100 per cell; set BLAP_TRIALS to override.
#include "bench_util.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  const int baseline_trials = trial_count(100);
  const int attack_trials = trial_count(100);

  banner("TABLE II — Success rates of MITM connection establishment");
  std::printf("%-26s | %-10s %-12s | %-10s %-12s\n", "", "paper", "measured", "paper",
              "measured");
  std::printf("%-26s | %-23s | %-23s\n", "Device", "without page blocking",
              "with page blocking");
  std::printf("%s\n", std::string(78, '-').c_str());

  bool shape_holds = true;
  std::uint64_t seed = 10'000;
  for (const auto& profile : core::table2_profiles()) {
    // Baseline: the race.
    int baseline_wins = 0;
    for (int t = 0; t < baseline_trials; ++t) {
      Scenario s = make_scenario(seed++, profile, core::TransportKind::kUart, true,
                                 profile.baseline_mitm_success);
      if (core::PageBlockingAttack::baseline_trial(*s.sim, *s.attacker, *s.accessory,
                                                   *s.target))
        ++baseline_wins;
    }
    // Attack: PLOC.
    int attack_wins = 0;
    for (int t = 0; t < attack_trials; ++t) {
      Scenario s = make_scenario(seed++, profile, core::TransportKind::kUart, true,
                                 profile.baseline_mitm_success);
      const auto report =
          core::PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
      if (report.mitm_established) ++attack_wins;
    }

    const double baseline_rate = 100.0 * baseline_wins / baseline_trials;
    const double attack_rate = 100.0 * attack_wins / attack_trials;
    std::printf("%-26s | %7.0f%%   %9.1f%%   | %7s    %9.1f%%\n",
                (profile.model + " (" + profile.os + ")").c_str(),
                100.0 * profile.baseline_mitm_success, baseline_rate, "100%", attack_rate);

    // Shape check: baseline within a binomial-noise band of the paper's
    // value; attack exactly 100 %.
    const double expected = 100.0 * profile.baseline_mitm_success;
    if (std::abs(baseline_rate - expected) > 15.0) shape_holds = false;
    if (attack_rate < 100.0) shape_holds = false;
  }

  std::printf("\n(baseline: %d trials/device, attack: %d trials/device; "
              "paper used 100. Shape %s.)\n",
              baseline_trials, attack_trials, shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
