// Micro-benchmarks for the cryptographic substrate (google-benchmark).
//
// Not a paper table — supporting data showing the simulator's security
// algorithms run at realistic cost ratios (ECDH dominates SSP, E1 is cheap
// enough to run per-authentication, E0 streams fast enough for payloads).
#include <benchmark/benchmark.h>

#include "crypto/cmac.hpp"
#include "crypto/e0.hpp"
#include "crypto/e1.hpp"
#include "crypto/ecdh.hpp"
#include "crypto/sha256.hpp"
#include "crypto/ssp_functions.hpp"
#include "hci/snoop.hpp"

namespace {

using namespace blap;
using namespace blap::crypto;

const BdAddr kAddrA = *BdAddr::parse("aa:bb:cc:dd:ee:01");
const BdAddr kAddrB = *BdAddr::parse("aa:bb:cc:dd:ee:02");

void BM_Sha256_1K(benchmark::State& state) {
  Bytes data(1024, 0x5A);
  for (auto _ : state) benchmark::DoNotOptimize(Sha256::hash(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1K);

void BM_AesCmac_1K(benchmark::State& state) {
  Aes128::Key key{};
  key.fill(0x2B);
  Bytes data(1024, 0x6B);
  for (auto _ : state) benchmark::DoNotOptimize(aes_cmac(key, data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AesCmac_1K);

void BM_SaferPlus_Ar(benchmark::State& state) {
  SaferPlus::Key key{};
  key.fill(0x71);
  const SaferPlus cipher(key);
  SaferPlus::Block block{};
  for (auto _ : state) {
    block = cipher.ar(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_SaferPlus_Ar);

void BM_E1_Authentication(benchmark::State& state) {
  LinkKey key{};
  key.fill(0x71);
  Rand128 rand{};
  rand.fill(0x2A);
  for (auto _ : state) benchmark::DoNotOptimize(e1(key, rand, kAddrA));
}
BENCHMARK(BM_E1_Authentication);

void BM_E3_EncryptionKey(benchmark::State& state) {
  LinkKey key{};
  key.fill(0x71);
  Rand128 rand{};
  rand.fill(0x44);
  Aco cof{};
  cof.fill(0x55);
  for (auto _ : state) benchmark::DoNotOptimize(e3(key, rand, cof));
}
BENCHMARK(BM_E3_EncryptionKey);

void BM_P256_Keygen(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(generate_keypair(EcCurve::p256(), rng));
}
BENCHMARK(BM_P256_Keygen);

void BM_P256_SharedSecret(benchmark::State& state) {
  Rng rng(7);
  const auto alice = generate_keypair(EcCurve::p256(), rng);
  const auto bob = generate_keypair(EcCurve::p256(), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(ecdh_shared_secret(EcCurve::p256(), alice.private_key,
                                                bob.public_key));
}
BENCHMARK(BM_P256_SharedSecret);

void BM_P192_SharedSecret(benchmark::State& state) {
  Rng rng(7);
  const auto alice = generate_keypair(EcCurve::p192(), rng);
  const auto bob = generate_keypair(EcCurve::p192(), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(ecdh_shared_secret(EcCurve::p192(), alice.private_key,
                                                bob.public_key));
}
BENCHMARK(BM_P192_SharedSecret);

void BM_Ssp_F2_LinkKey(benchmark::State& state) {
  Rng rng(7);
  const auto alice = generate_keypair(EcCurve::p256(), rng);
  const auto bob = generate_keypair(EcCurve::p256(), rng);
  const auto dh = *ecdh_shared_secret(EcCurve::p256(), alice.private_key, bob.public_key);
  Rand128 n1{}, n2{};
  n1.fill(1);
  n2.fill(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(f2(EcCurve::p256(), dh, n1, n2, kAddrA, kAddrB));
}
BENCHMARK(BM_Ssp_F2_LinkKey);

void BM_E0_Keystream_1K(benchmark::State& state) {
  EncryptionKey key{};
  key.fill(0x10);
  for (auto _ : state) {
    E0Cipher cipher(key, kAddrA, 7);
    Bytes payload(1024, 0x00);
    cipher.crypt(payload);
    benchmark::DoNotOptimize(payload);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_E0_Keystream_1K);

void BM_Snoop_SerializeParse(benchmark::State& state) {
  hci::SnoopLog log;
  for (int i = 0; i < 200; ++i) {
    hci::SnoopRecord record;
    record.timestamp_us = static_cast<SimTime>(i) * 1000;
    record.direction = i % 2 ? hci::Direction::kControllerToHost
                             : hci::Direction::kHostToController;
    record.packet = hci::make_command(hci::op::kAuthenticationRequested, Bytes{0x01, 0x00});
    log.append(std::move(record));
  }
  for (auto _ : state) {
    const Bytes wire = log.serialize();
    benchmark::DoNotOptimize(hci::SnoopLog::parse(wire));
  }
}
BENCHMARK(BM_Snoop_SerializeParse);

}  // namespace

BENCHMARK_MAIN();
