// Reproduces FIG. 11: "Link keys in HCI data from USB sniff and HCI dump".
//
// The paper's experiment: C is a Windows 10 PC with a USB Bluetooth dongle;
// the attacker sniffs the USB bus, converts the raw capture to ASCII hex,
// and searches for "0b 04 16" to locate the HCI_Link_Key_Request_Reply. The
// extracted key is then compared with the key logged by the HCI dump on M —
// they must be identical (both sides of one bond).
#include "bench_util.hpp"

#include "core/snoop_extractor.hpp"
#include "core/usb_extractor.hpp"
#include "transport/usb_sniffer.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  // C: Windows 10 PC, USB dongle, no HCI dump (profile row 7 of Table I).
  Scenario s = make_extraction_scenario(11, core::table1_profiles()[7]);

  // The attacker's analyzer clips onto C's USB bus.
  auto* usb = s.accessory->usb_transport();
  if (usb == nullptr) {
    std::printf("ERROR: accessory has no USB transport\n");
    return 1;
  }
  transport::UsbSniffer sniffer(*usb, &s.sim->rng());
  // M's own HCI dump (the comparison side of Fig. 11b).
  s.target->host().enable_snoop(true);

  // Bond C <-> M, then reconnect so the stored key crosses C's USB HCI.
  bool done = false;
  s.accessory->host().pair(s.target->address(), [&](hci::Status) { done = true; });
  s.sim->run_for(20 * kSecond);
  s.accessory->host().disconnect(s.target->address());
  s.sim->run_for(2 * kSecond);
  done = false;
  s.accessory->host().pair(s.target->address(), [&](hci::Status) { done = true; });
  s.sim->run_for(20 * kSecond);

  banner("FIG. 11a — Link key in USB sniff from C");
  const auto result = core::run_usb_extraction(sniffer);
  std::printf("raw capture: %zu bytes across %zu USB transfers\n",
              sniffer.raw_stream().size(), sniffer.frame_count());
  std::printf("BinaryToHex output: %zu characters; \"0b 04 16\" pattern hits: %zu\n",
              result.hex_ascii.size(), result.pattern_hits);

  core::ExtractedKey usb_key{};
  bool found = false;
  for (const auto& key : result.keys) {
    if (key.peer == s.target->address()) {
      usb_key = key;
      found = true;
    }
  }
  if (!found) {
    std::printf("ERROR: no key for M in the USB capture\n");
    return 1;
  }
  std::printf("\nDecoded from byte offset %zu of the raw stream:\n", usb_key.frame_index);
  std::printf("  Command   : HCI_Link_Key_Request_Reply (opcode 0x040b, length 0x16)\n");
  std::printf("  BD_ADDR   : %s\n", usb_key.peer.to_string().c_str());
  std::printf("  Link_Key  : %s\n", hex(usb_key.key).c_str());

  banner("FIG. 11b — Corresponding link key from M's HCI dump");
  const auto m_key = core::extract_link_key_for(s.target->host().snoop(),
                                                s.accessory->address());
  if (!m_key) {
    std::printf("ERROR: no key in M's dump\n");
    return 1;
  }
  std::printf("  Link_Key  : %s (from %s, frame %zu)\n", hex(m_key->key).c_str(),
              to_string(m_key->source), m_key->frame_index);

  const bool match = usb_key.key == m_key->key;
  std::printf("\nUSB-sniffed key == M's dumped key: %s\nFig. 11 shape %s\n",
              match ? "yes" : "NO", match ? "HOLDS" : "DOES NOT HOLD");
  return match ? 0 : 1;
}
