// Chaos sweep: exploration throughput + the robustness gate.
//
// Runs the full single-fault exploration of the bonded cell (baseline
// recorder pass, then one trial per reachable (site, ordinal) instance up to
// the ordinal cap) and reports coverage and wall throughput. Two gates, both
// hard exits:
//
//   * COVERAGE — at least 150 distinct single-fault instances across at
//     least 15 sites. The sweep is only evidence of robustness if it
//     actually reaches the stack's failure surface; a scenario change that
//     quietly drops passages fails here, not silently.
//   * OUTCOMES — zero invariant violations and zero stuck trials. Every
//     explored fault must resolve through a genuine recovery or clean-error
//     path. A finding is a bug to fix and pin (tests/replay_corpus/), never
//     an accepted bench result.
//
// Env: BLAP_JOBS (worker pool), BLAP_CHAOS_ORDINAL_CAP (default 24),
// BLAP_CHAOS_PAIRS=1 adds the bounded two-fault sample (reported, ungated).
#include "bench_util.hpp"

#include <chrono>

#include "chaos/chaos_campaign.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  campaign::ChaosCampaignConfig config;
  if (const char* env = std::getenv("BLAP_CHAOS_ORDINAL_CAP")) {
    const int cap = std::atoi(env);
    if (cap > 0) config.ordinal_cap = static_cast<std::uint64_t>(cap);
  }
  if (const char* env = std::getenv("BLAP_CHAOS_PAIRS"))
    config.pairs = std::atoi(env) != 0;

  banner("CHAOS SWEEP — single-fault exploration of the bonded cell");

  const auto start = std::chrono::steady_clock::now();
  const auto report = campaign::run_chaos_campaign(config);
  const auto wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);

  if (!report.explored) {
    std::printf("FAIL: exploration did not run: %s\n", report.fallback_reason.c_str());
    return 1;
  }

  const std::size_t trials = report.trials.size();
  const double rate = wall.count() > 0.0 ? static_cast<double>(trials) / wall.count() : 0.0;
  std::printf("sites reached      : %zu\n", report.sites);
  std::printf("baseline passages  : %llu\n",
              static_cast<unsigned long long>(report.baseline.total_hits));
  std::printf("single-fault trials: %zu (ordinal cap %llu)\n", report.singles,
              static_cast<unsigned long long>(config.ordinal_cap));
  if (config.pairs) std::printf("pair trials        : %zu\n", report.pair_trials);
  std::printf("outcomes           : %zu completed, %zu recovered, %zu clean-error, "
              "%zu stuck, %zu violation\n",
              report.completed, report.recovered, report.clean_errors, report.stuck,
              report.violations);
  std::printf("throughput         : %.1f trials/s (%zu trials in %.2f s)\n", rate, trials,
              wall.count());

  bool ok = true;
  if (report.sites < 15) {
    std::printf("FAIL: only %zu sites reached (floor 15)\n", report.sites);
    ok = false;
  }
  if (report.singles < 150) {
    std::printf("FAIL: only %zu single-fault instances explored (floor 150)\n",
                report.singles);
    ok = false;
  }
  if (report.violations != 0 || report.stuck != 0) {
    std::printf("FAIL: %zu violations, %zu stuck — fix and pin under "
                "tests/replay_corpus/, do not regenerate around this\n",
                report.violations, report.stuck);
    for (const auto& trial : report.trials)
      if (trial.outcome == snapshot::ChaosOutcome::kViolation ||
          trial.outcome == snapshot::ChaosOutcome::kStuck)
        std::printf("  %s -> %s\n", chaos::encode_fault_sites(trial.faults).c_str(),
                    snapshot::to_string(trial.outcome));
    ok = false;
  }
  return ok ? 0 : 1;
}
