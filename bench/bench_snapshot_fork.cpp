// Snapshot-fork trial engine: correctness diff + throughput gate.
//
// Three cells, each run twice — rebuild (one full setup per trial) vs fork
// (setup once, then restore + reseed per trial through
// src/snapshot/fork_campaign.hpp). The per-trial JSON of the two paths must
// be BYTE-IDENTICAL; that is the whole correctness contract of the fork
// engine (restore + reseed ≡ fresh setup), and the bench exits 1 on any
// diff.
//
//   * baseline / attack — the Table II cells (victim row 5). The warm point
//     is the post-build topology. Forking is correct here but barely faster:
//     scheduler pooling already made a topology build cost ~30 µs while the
//     trial body simulates 30 virtual seconds, so these cells exist for the
//     byte-identity diff, not the speedup.
//   * bonded — the warm-start path the snapshot engine is FOR. The warm-up
//     bonds C to M (full SSP Numeric Comparison with P-256 ECDH, ~30 virtual
//     seconds — the dominant wall cost of an extraction-style trial); the
//     per-trial body then revalidates the stored link key over PAN, the
//     paper's link-key validation probe. Rebuild pays the bonding every
//     trial, fork restores past it. This cell carries the >= 2x throughput
//     gate.
//
// Env: BLAP_TRIALS (default 100/cell), BLAP_JOBS, BLAP_SNAPSHOT_MIN_SPEEDUP
// (override the 2.0x gate, e.g. for heavily loaded CI machines).
#include "bench_util.hpp"

#include "snapshot/fork_campaign.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  const int trials = trial_count(100);
  constexpr std::size_t kProfileIndex = 5;
  const auto& profile = core::table2_profiles()[kProfileIndex];
  double min_speedup = 2.0;
  if (const char* env = std::getenv("BLAP_SNAPSHOT_MIN_SPEEDUP")) {
    const double v = std::atof(env);
    if (v > 0.0) min_speedup = v;
  }

  snapshot::ScenarioParams abc_params;
  abc_params.kind = snapshot::ScenarioParams::Kind::kAbc;
  abc_params.table = snapshot::ProfileTable::kTable2;
  abc_params.profile_index = kProfileIndex;
  abc_params.baseline_bias = profile.baseline_mitm_success;

  snapshot::ScenarioParams bonded_params;
  bonded_params.kind = snapshot::ScenarioParams::Kind::kExtraction;
  bonded_params.profile_index = kProfileIndex;

  const auto baseline_body = [](const campaign::TrialSpec&, Scenario& s) {
    campaign::TrialResult r;
    r.success = core::PageBlockingAttack::baseline_trial(*s.sim, *s.attacker, *s.accessory,
                                                         *s.target);
    r.virtual_end = s.sim->now();
    return r;
  };
  const auto attack_body = [](const campaign::TrialSpec&, Scenario& s) {
    const auto report =
        core::PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
    campaign::TrialResult r;
    r.success = report.mitm_established;
    r.virtual_end = s.sim->now();
    return r;
  };
  // Bonded-cell warm-up: C pairs with M (SSP Numeric Comparison, P-256) and
  // the stack drains to a strict-quiescent bonded idle. Runs under the build
  // seed; the engine's per-trial reseed erases its randomness either way.
  const auto bond_warmup = [](Scenario& s) {
    s.accessory->host().pair(s.target->address(), [](hci::Status) {});
    s.sim->run_for(30 * kSecond);
    s.sim->run_until_idle();
  };
  // Bonded-cell body: revalidate the stored link key by opening PAN (paper's
  // validation probe) — authentication reuses the bond, no ECDH. Fixed
  // 5-virtual-second window; PAN keep-alive timers re-arm, so no idle drain.
  const auto bonded_body = [](const campaign::TrialSpec&, Scenario& s) {
    bool validated = false;
    s.accessory->host().connect_pan(s.target->address(),
                                    [&validated](bool ok) { validated = ok; });
    s.sim->run_for(5 * kSecond);
    campaign::TrialResult r;
    r.success = validated;
    r.virtual_end = s.sim->now();
    return r;
  };

  banner("SNAPSHOT FORK — rebuild vs fork: byte-identity + throughput");
  std::printf("%-10s | %-12s | %-12s | %-8s | %-9s\n", "cell", "rebuild t/s", "fork t/s",
              "speedup", "identical");
  std::printf("%s\n", std::string(64, '-').c_str());

  bool ok = true;
  double gated_speedup = 0.0;
  const struct {
    const char* name;
    const snapshot::ScenarioParams* params;
    snapshot::ForkTrialFn body;
    snapshot::WarmSetupFn warm;
    bool gated;  // carries the >= min_speedup throughput gate
  } cells[] = {{"baseline", &abc_params, baseline_body, {}, false},
               {"attack", &abc_params, attack_body, {}, false},
               {"bonded", &bonded_params, bonded_body, bond_warmup, true}};
  std::uint64_t root = 10'000;
  for (const auto& cell : cells) {
    campaign::CampaignConfig cfg;
    cfg.label = std::string(profile.model) + " " + cell.name;
    cfg.trials = static_cast<std::size_t>(trials);
    cfg.root_seed = root;
    cfg.seed_fn = sequential_seed;
    root += static_cast<std::uint64_t>(trials);

    const auto rebuild = campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
      if (!cell.warm) {
        Scenario s = snapshot::build_scenario(spec.seed, *cell.params);
        return cell.body(spec, s);
      }
      Scenario s = snapshot::build_scenario(cfg.root_seed, *cell.params);
      cell.warm(s);
      s.sim->reseed(spec.seed);
      return cell.body(spec, s);
    });
    snapshot::ForkStats stats;
    const auto fork =
        snapshot::run_fork_campaign(cfg, *cell.params, cell.body, nullptr, &stats, cell.warm);

    const bool identical = rebuild.to_json(true) == fork.to_json(true);
    const double rebuild_rate = rebuild.wall_total_ns > 0
                                    ? static_cast<double>(rebuild.trials) * 1e9 /
                                          static_cast<double>(rebuild.wall_total_ns)
                                    : 0.0;
    const double fork_rate = fork.wall_total_ns > 0
                                 ? static_cast<double>(fork.trials) * 1e9 /
                                       static_cast<double>(fork.wall_total_ns)
                                 : 0.0;
    const double speedup = rebuild_rate > 0.0 ? fork_rate / rebuild_rate : 0.0;
    std::printf("%-10s | %12.1f | %12.1f | %7.2fx | %-9s\n", cell.name, rebuild_rate,
                fork_rate, speedup, identical ? "yes" : "NO");
    if (!identical || !stats.fork_used) ok = false;
    if (cell.gated) gated_speedup = speedup;
  }

  std::printf("\n(%d trials/cell; the fork path must reproduce the rebuild path's\n"
              "per-trial JSON byte-for-byte on every cell and reach >= %.1fx\n"
              "throughput on the bonded warm-start cell.)\n",
              trials, min_speedup);
  if (gated_speedup < min_speedup) {
    std::printf("FAIL: bonded warm-start speedup %.2fx < %.2fx\n", gated_speedup,
                min_speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
