// bench_radio_scale — radio medium throughput across population sizes.
//
// Measures the two hot paths the indexed medium rearchitecture targets,
// at N ∈ {10, 1k, 10k, 100k} attached endpoints:
//
//   * pages/sec — page() resolution + link bring-up, indexed (the live
//     implementation, O(log n + candidates)) versus an in-bench replica of
//     the pre-index linear scan (O(n) per page, with the O(n) std::find
//     attached() re-check at link-up), driving both with identical target
//     sequences;
//   * inquiry ns/event — one full inquiry storm with every endpoint
//     discoverable, through the batched response fan-out.
//
// Emits machine-readable BENCH_radio_scale.json (override the path with
// BLAP_JSON) so the perf trajectory is tracked across PRs; wall-derived
// rates are the *point* of this artifact, so unlike the campaign JSONs it
// is not byte-stable across runs.
//
// Env: BLAP_SCALE_POPULATIONS (comma list, default 10,1000,10000,100000),
// BLAP_SCALE_PAGES (page ops per measurement, default 2000), BLAP_JSON.
//
// Exits nonzero if N=10k is measured and the indexed medium fails a >= 10x
// pages/sec speedup over the linear replica — the regression gate CI runs.
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

#include "radio/crowd.hpp"
#include "radio/radio_medium.hpp"

namespace {

using namespace blap;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Minimal endpoint for raw medium throughput: fixed identity, always
/// scanning, uniform page-scan latency over R1.
class ScaleEndpoint final : public radio::RadioEndpoint {
 public:
  explicit ScaleEndpoint(BdAddr address) : address_(address) {}
  [[nodiscard]] BdAddr radio_address() const override { return address_; }
  [[nodiscard]] ClassOfDevice radio_class_of_device() const override {
    return ClassOfDevice(ClassOfDevice::kMobilePhone);
  }
  [[nodiscard]] std::string radio_name() const override { return "scale"; }
  [[nodiscard]] bool inquiry_scan_enabled() const override { return true; }
  [[nodiscard]] bool page_scan_enabled() const override { return true; }
  [[nodiscard]] SimTime sample_page_response_latency(Rng& rng) override {
    return 1 + rng.uniform(2048 * kSlot);
  }
  void on_link_established(radio::LinkId, const BdAddr&, bool) override {}
  void on_link_closed(radio::LinkId, std::uint8_t) override {}
  void on_air_frame(radio::LinkId, const Bytes&) override {}

 private:
  BdAddr address_;
};

/// The pre-index page() algorithm, preserved as the bench baseline: linear
/// candidate scan over the whole attachment vector, plus the linear
/// attached() re-check at link-up — exactly what the medium did before the
/// registry. Lives in bench code only; the linter bans this shape from
/// src/radio/.
class LinearPager {
 public:
  LinearPager(Scheduler& scheduler, Rng rng) : scheduler_(scheduler), rng_(rng) {}

  void attach(radio::RadioEndpoint* endpoint) { endpoints_.push_back(endpoint); }

  void page(radio::RadioEndpoint* initiator, const BdAddr& target, SimTime timeout) {
    radio::RadioEndpoint* winner = nullptr;
    SimTime best_latency = 0;
    for (radio::RadioEndpoint* ep : endpoints_) {
      if (ep == initiator || !ep->page_scan_enabled()) continue;
      if (!(ep->radio_address() == target)) continue;
      const SimTime latency = ep->sample_page_response_latency(rng_);
      if (winner == nullptr || latency < best_latency) {
        winner = ep;
        best_latency = latency;
      }
    }
    if (winner == nullptr || best_latency > timeout) {
      scheduler_.schedule_in(timeout, [] {});
      return;
    }
    const std::uint64_t id = next_link_id_++;
    radio::RadioEndpoint* responder = winner;
    // blap-taint: lifetime-ok — bench-local replica medium: endpoints_ membership
    // is re-checked by the linear scan below before either pointer is used
    scheduler_.schedule_in(best_latency, [this, id, initiator, responder] {
      if (std::find(endpoints_.begin(), endpoints_.end(), initiator) == endpoints_.end() ||
          std::find(endpoints_.begin(), endpoints_.end(), responder) == endpoints_.end())
        return;
      links_.emplace(id, std::make_pair(initiator, responder));
    });
  }

  [[nodiscard]] std::size_t links() const { return links_.size(); }

 private:
  Scheduler& scheduler_;
  Rng rng_;
  std::vector<radio::RadioEndpoint*> endpoints_;
  std::map<std::uint64_t, std::pair<radio::RadioEndpoint*, radio::RadioEndpoint*>> links_;
  std::uint64_t next_link_id_ = 1;
};

std::vector<std::size_t> population_axis() {
  std::vector<std::size_t> axis;
  const char* env = std::getenv("BLAP_SCALE_POPULATIONS");
  std::string spec = env != nullptr ? env : "10,1000,10000,100000";
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? spec.npos : comma - pos);
    if (!token.empty()) axis.push_back(std::strtoull(token.c_str(), nullptr, 0));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (axis.empty()) axis = {10, 1000, 10000, 100000};
  return axis;
}

struct Row {
  std::size_t population = 0;
  double indexed_pages_per_sec = 0.0;
  double linear_pages_per_sec = 0.0;
  double speedup = 0.0;
  double inquiry_ns_per_event = 0.0;
  std::size_t inquiry_responses = 0;
};

}  // namespace

int main() {
  using namespace blap::bench;

  std::size_t pages = 2000;
  if (const char* env = std::getenv("BLAP_SCALE_PAGES"))
    pages = std::strtoull(env, nullptr, 0);
  const auto axis = population_axis();

  banner("RADIO SCALE — pages/sec and inquiry ns/event vs population");
  std::printf("%-10s | %-16s | %-16s | %-8s | %-14s\n", "population", "indexed pages/s",
              "linear pages/s", "speedup", "inquiry ns/ev");
  std::printf("%s\n", std::string(76, '-').c_str());

  std::vector<Row> rows;
  bool gate_failed = false;
  for (const std::size_t n : axis) {
    Row row;
    row.population = n;

    std::vector<std::unique_ptr<ScaleEndpoint>> fleet;
    fleet.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      fleet.push_back(std::make_unique<ScaleEndpoint>(
          radio::Crowd::member_address(static_cast<std::uint32_t>(i))));

    // --- indexed: the live medium --------------------------------------
    {
      Scheduler scheduler;
      radio::RadioMedium medium(scheduler, Rng(42));
      for (const auto& ep : fleet) medium.attach(ep.get());
      Rng targets(7);
      const auto start = Clock::now();
      for (std::size_t p = 0; p < pages; ++p) {
        const auto t = static_cast<std::uint32_t>(targets.uniform(n));
        medium.page(fleet[t == 0 && n > 1 ? 1 : 0].get(), radio::Crowd::member_address(t),
                    2 * 2048 * kSlot, nullptr);
      }
      scheduler.run_all();
      row.indexed_pages_per_sec = static_cast<double>(pages) / seconds_since(start);
    }

    // --- linear replica of the pre-index algorithm ---------------------
    {
      // The linear scan is O(n) per page *and* per link-up; cap the op
      // count so the 100k row finishes, and normalise to pages/sec.
      const std::size_t linear_pages =
          std::min(pages, std::max<std::size_t>(100, 20'000'000 / std::max<std::size_t>(n, 1)));
      Scheduler scheduler;
      LinearPager pager(scheduler, Rng(42));
      for (const auto& ep : fleet) pager.attach(ep.get());
      Rng targets(7);
      const auto start = Clock::now();
      for (std::size_t p = 0; p < linear_pages; ++p) {
        const auto t = static_cast<std::uint32_t>(targets.uniform(n));
        pager.page(fleet[t == 0 && n > 1 ? 1 : 0].get(), radio::Crowd::member_address(t),
                   2 * 2048 * kSlot);
      }
      scheduler.run_all();
      row.linear_pages_per_sec = static_cast<double>(linear_pages) / seconds_since(start);
    }
    row.speedup = row.linear_pages_per_sec > 0.0
                      ? row.indexed_pages_per_sec / row.linear_pages_per_sec
                      : 0.0;

    // --- inquiry storm: every endpoint discoverable --------------------
    {
      Scheduler scheduler;
      radio::RadioMedium medium(scheduler, Rng(42));
      for (const auto& ep : fleet) medium.attach(ep.get());
      std::size_t responses = 0;
      const auto start = Clock::now();
      medium.start_inquiry(fleet[0].get(), 2 * kSecond,
                           [&responses](const radio::InquiryResponse&) { ++responses; },
                           nullptr);
      scheduler.run_all();
      const double wall = seconds_since(start);
      row.inquiry_responses = responses;
      row.inquiry_ns_per_event =
          responses > 0 ? wall * 1e9 / static_cast<double>(responses) : 0.0;
    }

    std::printf("%-10zu | %16.0f | %16.0f | %7.1fx | %14.1f\n", n,
                row.indexed_pages_per_sec, row.linear_pages_per_sec, row.speedup,
                row.inquiry_ns_per_event);
    if (n == 10'000 && row.speedup < 10.0) gate_failed = true;
    rows.push_back(row);
  }

  const char* json_path = std::getenv("BLAP_JSON");
  const std::string path = json_path != nullptr ? json_path : "BENCH_radio_scale.json";
  {
    std::ofstream out(path);
    out << "{\n  \"bench\": \"radio_scale\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"population\": " << r.population
          << ", \"indexed_pages_per_sec\": " << static_cast<std::uint64_t>(r.indexed_pages_per_sec)
          << ", \"linear_pages_per_sec\": " << static_cast<std::uint64_t>(r.linear_pages_per_sec)
          << ", \"speedup\": " << r.speedup
          << ", \"inquiry_ns_per_event\": " << r.inquiry_ns_per_event
          << ", \"inquiry_responses\": " << r.inquiry_responses << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("\nperf JSON -> %s\n", path.c_str());

  if (gate_failed) {
    std::fprintf(stderr,
                 "error: indexed medium is under the 10x pages/sec gate at N=10k\n");
    return 1;
  }
  return 0;
}
