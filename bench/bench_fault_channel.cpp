// Microbenchmark for the radio medium's frame hot path under the fault
// layer. The determinism contract says a disabled FaultPlan must cost
// nothing observable; this bench pins the wall-clock side of that promise:
// BM_SendFrameDisabledPlan must sit within noise of BM_SendFrameNoPlan
// (the disabled path is one null-pointer test on the link's channel), while
// BM_SendFrameFaulted shows what an active channel model adds per frame
// (one or two Rng draws plus the verdict branch).
#include <benchmark/benchmark.h>

#include "faults/fault_plan.hpp"
#include "radio/radio_medium.hpp"

namespace {

using namespace blap;
using namespace blap::radio;

/// Minimal always-scanning endpoint: counts received frames and nothing else.
class SinkEndpoint : public RadioEndpoint {
 public:
  explicit SinkEndpoint(BdAddr addr) : addr_(addr) {}

  BdAddr radio_address() const override { return addr_; }
  ClassOfDevice radio_class_of_device() const override { return ClassOfDevice(0x240404); }
  std::string radio_name() const override { return "sink"; }
  bool inquiry_scan_enabled() const override { return true; }
  bool page_scan_enabled() const override { return true; }
  SimTime sample_page_response_latency(Rng&) override { return kSlot; }
  void on_link_established(LinkId, const BdAddr&, bool) override {}
  void on_link_closed(LinkId, std::uint8_t) override {}
  void on_air_frame(LinkId, const Bytes&) override { ++received; }

  std::uint64_t received = 0;

 private:
  BdAddr addr_;
};

/// One medium, two endpoints, one established link.
struct Bench {
  Bench()
      : medium(sched, Rng(7)),
        a(*BdAddr::parse("00:00:00:00:00:01")),
        b(*BdAddr::parse("00:00:00:00:00:02")) {
    medium.attach(&a);
    medium.attach(&b);
    medium.page(&a, b.radio_address(), kSecond,
                [this](std::optional<LinkId> id) { link = id.value_or(0); });
    sched.run_all();
  }

  Scheduler sched;
  RadioMedium medium;
  SinkEndpoint a;
  SinkEndpoint b;
  LinkId link = 0;
};

void pump_frames(benchmark::State& state, const faults::FaultPlan* plan) {
  Bench bench;
  if (plan != nullptr) bench.medium.set_fault_plan(*plan);
  const Bytes frame{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  for (auto _ : state) {
    bench.medium.send_frame(bench.link, &bench.a, frame);
    bench.sched.run_all();
  }
  benchmark::DoNotOptimize(bench.b.received);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Baseline: the medium has never heard of a FaultPlan.
void BM_SendFrameNoPlan(benchmark::State& state) { pump_frames(state, nullptr); }
BENCHMARK(BM_SendFrameNoPlan);

// A default-constructed (disabled) plan installed: must match the baseline.
void BM_SendFrameDisabledPlan(benchmark::State& state) {
  const faults::FaultPlan plan;
  pump_frames(state, &plan);
}
BENCHMARK(BM_SendFrameDisabledPlan);

// Active channel model: iid loss + corruption draws on every frame.
void BM_SendFrameFaulted(benchmark::State& state) {
  faults::FaultPlan plan;
  plan.seed = 11;
  plan.loss = 0.15;
  plan.corruption = 0.05;
  pump_frames(state, &plan);
}
BENCHMARK(BM_SendFrameFaulted);

}  // namespace

BENCHMARK_MAIN();
