// Fuzz execution engine: snapshot-fork vs rebuild-per-iteration.
//
// The stack fuzz target's entire performance story is that one execution is
// a snapshot fork (restore the warm bonded cell + reseed), not a rebuild
// (scenario construction + full SSP P-256 bonding). This bench runs the
// SAME deterministic input sequence down both paths and gates:
//
//   * correctness — per-input verdicts (finding kind, violation count,
//     final virtual clock) must be identical on both paths. This is the
//     fork engine's restore+reseed ≡ fresh-build contract, applied to the
//     fuzz trial body.
//   * throughput — the fork path must be >= 10x the rebuild path. That is
//     the floor the ISSUE's acceptance gate names; in practice the gap is
//     far larger because bonding dominates a rebuild.
//
// Env: BLAP_TRIALS (default 60 inputs), BLAP_FUZZ_MIN_SPEEDUP (override the
// 10x gate, e.g. for heavily loaded CI machines).
#include "bench_util.hpp"

#include <chrono>
#include <vector>

#include "fuzz/mutator.hpp"
#include "fuzz/targets.hpp"
#include "snapshot/chaos_trial.hpp"
#include "snapshot/fuzz_trial.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;
  using Clock = std::chrono::steady_clock;

  const int trials = trial_count(60);
  double min_speedup = 10.0;
  if (const char* env = std::getenv("BLAP_FUZZ_MIN_SPEEDUP")) {
    const double v = std::atof(env);
    if (v > 0.0) min_speedup = v;
  }

  banner("FUZZ THROUGHPUT — snapshot-fork vs rebuild-per-iteration");

  // One deterministic input set for both paths: the stack seeds plus
  // mutants of them, exactly what a campaign's early iterations execute.
  std::vector<Bytes> inputs;
  {
    fuzz::StackTarget seed_source;
    inputs = seed_source.seed_inputs();
    fuzz::Mutator mutator(424242);
    while (inputs.size() < static_cast<std::size_t>(trials))
      inputs.push_back(mutator.mutate(inputs[inputs.size() % 4], inputs,
                                      seed_source.max_input_len()));
    inputs.resize(static_cast<std::size_t>(trials));
  }

  struct Verdict {
    std::string kind;
    std::size_t violations = 0;
    SimTime virtual_end = 0;
    bool operator==(const Verdict&) const = default;
  };

  // Fork path: one target construction (scenario build + bonding + warm
  // capture), then every input is restore + reseed + inject. Construction
  // is inside the timed window — the rebuild path pays its setup per
  // iteration, so the fork path pays its one-time setup too.
  std::vector<Verdict> fork_verdicts;
  const auto fork_start = Clock::now();
  {
    fuzz::StackTarget target;
    for (const Bytes& input : inputs) {
      const auto report = snapshot::run_fuzz_stack_trial(target.scenario(), target.warm(),
                                                         fuzz::kStackSeed, input);
      fork_verdicts.push_back(
          {report.finding_kind(), report.violations.size(), report.virtual_end});
    }
  }
  const double fork_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - fork_start)
                              .count());

  // Rebuild path: scenario construction + full bonding warm-up per input,
  // then the identical trial body without a restore.
  std::vector<Verdict> rebuild_verdicts;
  const auto rebuild_start = Clock::now();
  for (const Bytes& input : inputs) {
    snapshot::Scenario s =
        snapshot::build_scenario(fuzz::kStackSeed, snapshot::bonded_cell_params());
    snapshot::bonded_warm_setup(s);
    const auto report =
        snapshot::run_fuzz_stack_trial_no_restore(s, fuzz::kStackSeed, input);
    rebuild_verdicts.push_back(
        {report.finding_kind(), report.violations.size(), report.virtual_end});
  }
  const double rebuild_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - rebuild_start)
                              .count());

  const bool identical = fork_verdicts == rebuild_verdicts;
  const double fork_rate = fork_ns > 0 ? static_cast<double>(trials) * 1e9 / fork_ns : 0.0;
  const double rebuild_rate =
      rebuild_ns > 0 ? static_cast<double>(trials) * 1e9 / rebuild_ns : 0.0;
  const double speedup = rebuild_rate > 0.0 ? fork_rate / rebuild_rate : 0.0;

  std::printf("%-10s | %-14s | %-14s | %-8s | %-9s\n", "inputs", "rebuild ex/s",
              "fork ex/s", "speedup", "identical");
  std::printf("%s\n", std::string(68, '-').c_str());
  std::printf("%-10d | %14.1f | %14.1f | %7.2fx | %-9s\n", trials, rebuild_rate,
              fork_rate, speedup, identical ? "yes" : "NO");

  std::printf("\n(Same %d-input sequence down both paths; verdicts must match\n"
              "exactly and the fork path must reach >= %.1fx throughput.)\n",
              trials, min_speedup);
  bool ok = true;
  if (!identical) {
    std::printf("FAIL: fork and rebuild verdicts diverged\n");
    ok = false;
  }
  if (speedup < min_speedup) {
    std::printf("FAIL: snapshot-fork speedup %.2fx < %.2fx\n", speedup, min_speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
