// Ablation bench for the §VII mitigations (DESIGN.md experiment index):
// re-runs both attacks under each proposed defense and reports attack
// success. Expected: every mitigation drives its attack to failure while the
// undefended run succeeds; and the defenses are channel-specific — the snoop
// filter does NOT stop USB sniffing (the paper's argument for payload
// encryption).
//
// All ablation cells are independent seeded trials, so they run as one
// campaign over BLAP_JOBS workers; seeds are fixed per cell (root + index,
// matching the historical sequential order), keeping every measured column
// bit-identical for any worker count.
#include "bench_util.hpp"

#include <functional>

#include "core/mitigations.hpp"

namespace {

struct Cell {
  const char* attack;
  const char* mitigation;
  bool expected_success;
  std::function<bool(std::uint64_t seed)> run;  // returns measured success
};

}  // namespace

int main() {
  using namespace blap;
  using namespace blap::bench;
  using namespace blap::core;

  std::vector<Cell> cells;

  auto extraction = [&](const char* label, bool usb, auto prepare, bool expected) {
    cells.push_back(Cell{
        usb ? "extraction (USB sniff)" : "extraction (HCI dump)", label, expected,
        [usb, prepare](std::uint64_t seed) {
          // HCI-dump path: C is an Android phone (Table I row 0); USB path: C
          // is the Windows 10 PC with the CSR dongle (row 7).
          Scenario s = usb ? make_extraction_scenario(seed, table1_profiles()[7])
                           : make_extraction_scenario(seed, table1_profiles()[0]);
          prepare(s);
          LinkKeyExtractionOptions options;
          options.use_usb_sniff = usb;
          options.validate_by_impersonation = false;
          const auto report = LinkKeyExtractionAttack::run(*s.sim, *s.attacker,
                                                           *s.accessory, *s.target, options);
          return report.key_extracted && report.key_matches_bond;
        }});
  };

  extraction("none", false, [](Scenario&) {}, true);
  extraction("snoop filter: header-only", false,
             [](Scenario& s) { apply_snoop_filter(*s.accessory, SnoopFilterMode::kHeaderOnly); },
             false);
  extraction("snoop filter: randomize key", false,
             [](Scenario& s) { apply_snoop_filter(*s.accessory, SnoopFilterMode::kRandomizeKey); },
             false);
  extraction("HCI payload encryption", false,
             [](Scenario& s) { apply_hci_payload_encryption(*s.accessory); }, false);
  extraction("none", true, [](Scenario&) {}, true);
  // The paper's key observation: dump filtering cannot help against a
  // hardware tap — only payload encryption does.
  extraction("snoop filter: header-only (USB tap!)", true,
             [](Scenario& s) { apply_snoop_filter(*s.accessory, SnoopFilterMode::kHeaderOnly); },
             true);
  extraction("HCI payload encryption", true,
             [](Scenario& s) { apply_hci_payload_encryption(*s.accessory); }, false);

  auto page_blocking = [&](const char* label, auto prepare, bool expected) {
    cells.push_back(Cell{"page blocking", label, expected, [prepare](std::uint64_t seed) {
                           Scenario s = make_scenario(seed, table2_profiles()[5],
                                                      TransportKind::kUart, true);
                           prepare(s);
                           const auto report = PageBlockingAttack::run(
                               *s.sim, *s.attacker, *s.accessory, *s.target, {});
                           return report.mitm_established;
                         }});
  };

  page_blocking("none", [](Scenario&) {}, true);
  page_blocking("role/IO-cap detector (§VII-B)",
                [](Scenario& s) { apply_page_blocking_detection(*s.target); }, false);
  const std::size_t mitigation_cells = cells.size();

  // --- Attack-design ablations (DESIGN.md §5) -------------------------------
  // 1. Drop point: the paper stalls the key request; answering with a wrong
  //    key instead triggers an auth failure that purges C's bond.
  auto drop_point = [&](const char* label, bool wrong_key, bool expected) {
    cells.push_back(Cell{"extraction drop point", label, expected,
                         [wrong_key](std::uint64_t seed) {
                           Scenario s = make_extraction_scenario(seed, table1_profiles()[0]);
                           LinkKeyExtractionOptions options;
                           options.answer_with_wrong_key = wrong_key;
                           options.validate_by_impersonation = false;
                           const auto report = LinkKeyExtractionAttack::run(
                               *s.sim, *s.attacker, *s.accessory, *s.target, options);
                           return report.c_bond_survived;
                         }});
  };
  drop_point("stall (paper) -> bond survives", false, true);
  drop_point("wrong key -> bond purged", true, false);

  // 2. PLOC lifetime: a long hold dies to the victim's idle timeout unless
  //    the attacker feeds it dummy traffic (the paper's SDP keep-alive).
  auto ploc_hold = [&](const char* label, bool keepalive, bool expected) {
    cells.push_back(Cell{"PLOC 30s hold", label, expected, [keepalive](std::uint64_t seed) {
                           Scenario s = make_scenario(seed, table2_profiles()[5],
                                                      TransportKind::kUart, true);
                           PageBlockingOptions options;
                           options.ploc_hold = 30 * kSecond;
                           options.pairing_delay = 25 * kSecond;
                           options.keepalive = keepalive;
                           options.window = 80 * kSecond;
                           const auto report = PageBlockingAttack::run(
                               *s.sim, *s.attacker, *s.accessory, *s.target, options);
                           return report.mitm_established;
                         }});
  };
  ploc_hold("no keep-alive -> link dies", false, false);
  ploc_hold("L2CAP echo keep-alive -> survives", true, true);

  // One campaign over every cell; seeds follow the historical sequential
  // order (9'000 + registration index).
  campaign::CampaignConfig cfg;
  cfg.label = "mitigation ablation";
  cfg.trials = cells.size();
  cfg.root_seed = 9'000;
  cfg.seed_fn = sequential_seed;
  const auto summary = campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
    campaign::TrialResult r;
    r.success = cells[spec.index].run(spec.seed);
    return r;
  });

  auto print_rows = [&](std::size_t begin, std::size_t end, const char* col0) {
    std::printf("%-24s %-36s %-9s %-9s %s\n", col0, begin == 0 ? "mitigation" : "variant",
                "expected", "measured", "ok");
    std::printf("%s\n", std::string(90, '-').c_str());
    bool all_ok = true;
    for (std::size_t i = begin; i < end; ++i) {
      const Cell& cell = cells[i];
      const bool measured = summary.results[i].success;
      const bool ok = cell.expected_success == measured;
      all_ok &= ok;
      std::printf("%-24s %-36s %-9s %-9s %s\n", cell.attack, cell.mitigation,
                  cell.expected_success ? "succeeds" : "fails",
                  measured ? "succeeds" : "fails", ok ? "PASS" : "FAIL");
    }
    return all_ok;
  };

  banner("ABLATION — attack success under §VII mitigations");
  bool all_ok = print_rows(0, mitigation_cells, "attack");

  banner("ABLATION — attack design choices (DESIGN.md §5)");
  all_ok &= print_rows(mitigation_cells, cells.size(), "dimension");

  std::printf("\nAblation %s\n", all_ok ? "HOLDS" : "DOES NOT HOLD");
  return all_ok ? 0 : 1;
}
