// Ablation bench for the §VII mitigations (DESIGN.md experiment index):
// re-runs both attacks under each proposed defense and reports attack
// success. Expected: every mitigation drives its attack to failure while the
// undefended run succeeds; and the defenses are channel-specific — the snoop
// filter does NOT stop USB sniffing (the paper's argument for payload
// encryption).
#include "bench_util.hpp"

#include "core/mitigations.hpp"

namespace {
struct Row {
  const char* attack;
  const char* mitigation;
  bool expected_success;
  bool measured_success;
};
}  // namespace

int main() {
  using namespace blap;
  using namespace blap::bench;
  using namespace blap::core;

  std::vector<Row> rows;
  std::uint64_t seed = 9'000;

  auto extraction = [&](const char* label, bool usb, auto prepare, bool expected) {
    // HCI-dump path: C is an Android phone (Table I row 0); USB path: C is
    // the Windows 10 PC with the CSR dongle (row 7).
    Scenario s = usb ? make_extraction_scenario(seed++, table1_profiles()[7])
                     : make_extraction_scenario(seed++, table1_profiles()[0]);
    prepare(s);
    LinkKeyExtractionOptions options;
    options.use_usb_sniff = usb;
    options.validate_by_impersonation = false;
    const auto report =
        LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
    rows.push_back(Row{usb ? "extraction (USB sniff)" : "extraction (HCI dump)", label,
                       expected, report.key_extracted && report.key_matches_bond});
  };

  extraction("none", false, [](Scenario&) {}, true);
  extraction("snoop filter: header-only", false,
             [](Scenario& s) { apply_snoop_filter(*s.accessory, SnoopFilterMode::kHeaderOnly); },
             false);
  extraction("snoop filter: randomize key", false,
             [](Scenario& s) { apply_snoop_filter(*s.accessory, SnoopFilterMode::kRandomizeKey); },
             false);
  extraction("HCI payload encryption", false,
             [](Scenario& s) { apply_hci_payload_encryption(*s.accessory); }, false);
  extraction("none", true, [](Scenario&) {}, true);
  // The paper's key observation: dump filtering cannot help against a
  // hardware tap — only payload encryption does.
  extraction("snoop filter: header-only (USB tap!)", true,
             [](Scenario& s) { apply_snoop_filter(*s.accessory, SnoopFilterMode::kHeaderOnly); },
             true);
  extraction("HCI payload encryption", true,
             [](Scenario& s) { apply_hci_payload_encryption(*s.accessory); }, false);

  auto page_blocking = [&](const char* label, auto prepare, bool expected) {
    Scenario s = make_scenario(seed++, table2_profiles()[5], TransportKind::kUart, true);
    prepare(s);
    const auto report =
        PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
    rows.push_back(Row{"page blocking", label, expected, report.mitm_established});
  };

  page_blocking("none", [](Scenario&) {}, true);
  page_blocking("role/IO-cap detector (§VII-B)",
                [](Scenario& s) { apply_page_blocking_detection(*s.target); }, false);

  banner("ABLATION — attack success under §VII mitigations");
  std::printf("%-24s %-36s %-9s %-9s %s\n", "attack", "mitigation", "expected", "measured",
              "ok");
  std::printf("%s\n", std::string(90, '-').c_str());
  bool all_ok = true;
  for (const auto& row : rows) {
    const bool ok = row.expected_success == row.measured_success;
    all_ok &= ok;
    std::printf("%-24s %-36s %-9s %-9s %s\n", row.attack, row.mitigation,
                row.expected_success ? "succeeds" : "fails",
                row.measured_success ? "succeeds" : "fails", ok ? "PASS" : "FAIL");
  }

  // --- Attack-design ablations (DESIGN.md §5) -------------------------------
  std::vector<Row> design_rows;

  // 1. Drop point: the paper stalls the key request; answering with a wrong
  //    key instead triggers an auth failure that purges C's bond.
  {
    Scenario s = make_extraction_scenario(seed++, table1_profiles()[0]);
    LinkKeyExtractionOptions options;
    options.validate_by_impersonation = false;
    const auto report =
        LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
    design_rows.push_back(
        Row{"extraction drop point", "stall (paper) -> bond survives", true,
            report.c_bond_survived});
  }
  {
    Scenario s = make_extraction_scenario(seed++, table1_profiles()[0]);
    LinkKeyExtractionOptions options;
    options.answer_with_wrong_key = true;
    options.validate_by_impersonation = false;
    const auto report =
        LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
    design_rows.push_back(Row{"extraction drop point", "wrong key -> bond purged", false,
                              report.c_bond_survived});
  }

  // 2. PLOC lifetime: a long hold dies to the victim's idle timeout unless
  //    the attacker feeds it dummy traffic (the paper's SDP keep-alive).
  {
    Scenario s = make_scenario(seed++, table2_profiles()[5], TransportKind::kUart, true);
    PageBlockingOptions options;
    options.ploc_hold = 30 * kSecond;
    options.pairing_delay = 25 * kSecond;
    options.keepalive = false;
    options.window = 80 * kSecond;
    const auto report =
        PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
    design_rows.push_back(Row{"PLOC 30s hold", "no keep-alive -> link dies", false,
                              report.mitm_established});
  }
  {
    Scenario s = make_scenario(seed++, table2_profiles()[5], TransportKind::kUart, true);
    PageBlockingOptions options;
    options.ploc_hold = 30 * kSecond;
    options.pairing_delay = 25 * kSecond;
    options.keepalive = true;
    options.window = 80 * kSecond;
    const auto report =
        PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
    design_rows.push_back(Row{"PLOC 30s hold", "L2CAP echo keep-alive -> survives", true,
                              report.mitm_established});
  }

  banner("ABLATION — attack design choices (DESIGN.md §5)");
  std::printf("%-24s %-36s %-9s %-9s %s\n", "dimension", "variant", "expected", "measured",
              "ok");
  std::printf("%s\n", std::string(90, '-').c_str());
  for (const auto& row : design_rows) {
    const bool ok = row.expected_success == row.measured_success;
    all_ok &= ok;
    std::printf("%-24s %-36s %-9s %-9s %s\n", row.attack, row.mitigation,
                row.expected_success ? "succeeds" : "fails",
                row.measured_success ? "succeeds" : "fails", ok ? "PASS" : "FAIL");
  }

  std::printf("\nAblation %s\n", all_ok ? "HOLDS" : "DOES NOT HOLD");
  return all_ok ? 0 : 1;
}
