// bench_snoop_analytics — fleet snoop-scan throughput.
//
// Measures the three layers of the analytics engine on a synthetic capture
// shaped like real pairing traffic (ACL-dominated, with the command/event
// punctuation the detectors key on):
//
//   * cursor GB/s    — raw SnoopCursor record iteration over an in-memory
//                      capture buffer: the zero-copy floor everything else
//                      pays on top of;
//   * detect GB/s    — the same walk through RecordCtx decode plus all four
//                      default detectors;
//   * files/sec      — analyze_files() over a directory of capture files at
//                      jobs ∈ {1, 2, 4, 8}, i.e. the mmap + worker-pool
//                      path blap-snoopd runs, with per-jobs speedup.
//
// Emits machine-readable BENCH_snoop_analytics.json (override the path with
// BLAP_JSON). Wall-derived rates are the point of this artifact, so unlike
// the campaign JSONs it is not byte-stable across runs.
//
//   bench_snoop_analytics [--smoke]
//
// --smoke shrinks the buffer and file counts for CI but keeps the gate:
// exits nonzero when the single-thread cursor walk is under 1 GB/s, the
// regression floor for the "thousands of captures per run" fleet target.
#include "bench_util.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "analytics/detector.hpp"
#include "analytics/fleet.hpp"
#include "hci/snoop.hpp"

namespace {

using namespace blap;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A capture shaped like a long pairing-plus-traffic session: mostly ACL
/// data with periodic connection/authentication events, so the detector walk
/// exercises both its fast path (ACL skip) and its event machinery.
Bytes synthetic_capture(std::size_t records, std::size_t acl_payload) {
  hci::SnoopLog log;
  const BdAddr peer = *BdAddr::parse("00:1b:7d:da:71:0a");
  Bytes acl_data(acl_payload, 0x5a);
  SimTime t = 1000;
  for (std::size_t i = 0; i < records; ++i) {
    hci::SnoopRecord record;
    record.timestamp_us = t;
    t += 625;
    if (i % 64 == 0) {
      // Successful inbound connect: ConnectionRequest + ConnectionComplete.
      ByteWriter req;
      peer.to_wire(req);
      ClassOfDevice(ClassOfDevice::kMobilePhone).to_wire(req);
      req.u8(0x01);  // ACL link type
      record.direction = hci::Direction::kControllerToHost;
      record.packet = hci::make_event(hci::ev::kConnectionRequest, req.data());
    } else if (i % 64 == 1) {
      ByteWriter complete;
      complete.u8(0x00).u16(0x0001);
      peer.to_wire(complete);
      complete.u8(0x01).u8(0x00);
      record.direction = hci::Direction::kControllerToHost;
      record.packet = hci::make_event(hci::ev::kConnectionComplete, complete.data());
    } else if (i % 64 == 2) {
      ByteWriter auth;
      auth.u16(0x0001);
      record.direction = hci::Direction::kHostToController;
      record.packet = hci::make_command(hci::op::kAuthenticationRequested, auth.data());
    } else {
      record.direction =
          i % 2 == 0 ? hci::Direction::kHostToController : hci::Direction::kControllerToHost;
      record.packet = hci::make_acl(0x0001, acl_data);
    }
    log.append(std::move(record));
  }
  return log.serialize();
}

/// One full cursor pass; returns bytes walked (0 on a fault, which would be
/// a bench-harness bug, not a measurement).
std::size_t cursor_pass(BytesView data) {
  auto cursor = hci::SnoopCursor::open(data);
  if (!cursor) return 0;
  std::size_t records = 0;
  while (cursor->next()) ++records;
  return cursor->fault().ok() ? data.size() : 0;
}

/// One cursor pass through RecordCtx + the default detector set.
std::size_t detect_pass(BytesView data,
                        std::vector<std::unique_ptr<analytics::Detector>>& detectors,
                        std::vector<analytics::Finding>& findings) {
  auto cursor = hci::SnoopCursor::open(data);
  if (!cursor) return 0;
  while (const auto view = cursor->next()) {
    const auto ctx = analytics::RecordCtx::from_view(*view);
    for (auto& d : detectors) d->on_record(ctx);
  }
  findings.clear();
  for (auto& d : detectors) d->finish(findings);
  return cursor->fault().ok() ? data.size() : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blap::bench;
  namespace fs = std::filesystem;

  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  // ~190 bytes/record wire size; full mode walks a ~186 MiB buffer.
  const std::size_t records = smoke ? 200'000 : 1'000'000;
  const std::size_t passes = smoke ? 3 : 6;
  const std::size_t file_count = smoke ? 64 : 256;
  const std::size_t file_records = smoke ? 500 : 2000;

  banner(std::string("SNOOP ANALYTICS — parse GB/s and files/sec") +
         (smoke ? " (smoke)" : ""));

  const Bytes capture = synthetic_capture(records, 160);
  const double buffer_gib = static_cast<double>(capture.size()) / (1024.0 * 1024.0 * 1024.0);

  // --- raw cursor walk -----------------------------------------------------
  double cursor_gb_per_s = 0.0;
  {
    std::size_t walked = 0;
    const auto start = Clock::now();
    for (std::size_t p = 0; p < passes; ++p) walked += cursor_pass(capture);
    const double wall = seconds_since(start);
    if (walked != passes * capture.size()) {
      std::fprintf(stderr, "error: cursor pass faulted on the synthetic capture\n");
      return 1;
    }
    cursor_gb_per_s = static_cast<double>(walked) / wall / 1e9;
  }

  // --- cursor + RecordCtx + 4 detectors ------------------------------------
  double detect_gb_per_s = 0.0;
  std::size_t findings_per_pass = 0;
  {
    auto detectors = analytics::make_default_detectors({});
    std::vector<analytics::Finding> findings;
    std::size_t walked = 0;
    const auto start = Clock::now();
    for (std::size_t p = 0; p < passes; ++p) walked += detect_pass(capture, detectors, findings);
    const double wall = seconds_since(start);
    if (walked != passes * capture.size()) {
      std::fprintf(stderr, "error: detect pass faulted on the synthetic capture\n");
      return 1;
    }
    detect_gb_per_s = static_cast<double>(walked) / wall / 1e9;
    findings_per_pass = findings.size();
  }

  std::printf("capture: %zu records, %.3f GiB buffer, %zu passes\n", records, buffer_gib,
              passes);
  std::printf("%-24s | %8.2f GB/s\n", "cursor walk", cursor_gb_per_s);
  std::printf("%-24s | %8.2f GB/s  (%zu finding(s)/pass)\n", "cursor + detectors",
              detect_gb_per_s, findings_per_pass);

  // --- files/sec scaling over the mmap + worker-pool path ------------------
  const fs::path dir = fs::temp_directory_path() / "blap_bench_snoop_analytics";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create %s\n", dir.string().c_str());
    return 1;
  }
  const Bytes file_capture = synthetic_capture(file_records, 160);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < file_count; ++i) {
    const fs::path p = dir / strfmt("capture_%04zu.btsnoop", i);
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(file_capture.data()),
              static_cast<std::streamsize>(file_capture.size()));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", p.string().c_str());
      return 1;
    }
    paths.push_back(p.string());
  }

  struct ScaleRow {
    unsigned jobs = 0;
    double files_per_sec = 0.0;
    double speedup = 0.0;
  };
  std::vector<ScaleRow> scale;
  std::printf("\n%zu files x %zu records:\n", file_count, file_records);
  std::printf("%-6s | %-14s | %-8s\n", "jobs", "files/sec", "speedup");
  std::printf("%s\n", std::string(36, '-').c_str());
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    analytics::FleetConfig config;
    config.jobs = jobs;
    const auto start = Clock::now();
    const auto report = analytics::analyze_files(paths, config, nullptr);
    const double wall = seconds_since(start);
    if (report.files_failed != 0) {
      std::fprintf(stderr, "error: %zu bench file(s) failed to scan\n", report.files_failed);
      return 1;
    }
    ScaleRow row;
    row.jobs = jobs;
    row.files_per_sec = static_cast<double>(file_count) / wall;
    row.speedup = scale.empty() ? 1.0 : row.files_per_sec / scale.front().files_per_sec;
    std::printf("%-6u | %14.0f | %7.2fx\n", row.jobs, row.files_per_sec, row.speedup);
    scale.push_back(row);
  }
  fs::remove_all(dir, ec);

  const char* json_env = std::getenv("BLAP_JSON");
  const std::string json_path = json_env != nullptr ? json_env : "BENCH_snoop_analytics.json";
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"snoop_analytics\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"capture_records\": " << records << ",\n"
        << "  \"capture_bytes\": " << capture.size() << ",\n"
        << "  \"cursor_gb_per_sec\": " << cursor_gb_per_s << ",\n"
        << "  \"detect_gb_per_sec\": " << detect_gb_per_s << ",\n"
        << "  \"scaling\": [\n";
    for (std::size_t i = 0; i < scale.size(); ++i)
      out << "    {\"jobs\": " << scale[i].jobs
          << ", \"files_per_sec\": " << static_cast<std::uint64_t>(scale[i].files_per_sec)
          << ", \"speedup\": " << scale[i].speedup << "}"
          << (i + 1 < scale.size() ? "," : "") << "\n";
    out << "  ]\n}\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
      return 1;
    }
  }
  std::printf("\nperf JSON -> %s\n", json_path.c_str());

  if (cursor_gb_per_s < 1.0) {
    std::fprintf(stderr, "error: cursor walk %.2f GB/s is under the 1 GB/s floor\n",
                 cursor_gb_per_s);
    return 1;
  }
  return 0;
}
