// End-to-end scenario benchmarks: wall-clock cost of complete simulated
// procedures (device bring-up, SSP/legacy pairing, bonded reconnect, both
// attacks). These are the numbers that size bulk experiments like Table II's
// 700 independent trials.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/link_key_extraction.hpp"
#include "core/page_blocking.hpp"

namespace {

using namespace blap;
using namespace blap::core;
using blap::bench::Scenario;

DeviceSpec spec(const std::string& name, const std::string& addr) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  return s;
}

// Shared across all benchmark fixtures; atomic, so fixtures stay race-free
// under --benchmark_threads (the old `static std::uint64_t seed++` was not).
std::uint64_t next_seed() {
  static blap::bench::SeedStream stream(1'000'000);
  return stream.next();
}

void BM_DeviceBringUp(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim(next_seed());
    Device& d = sim.add_device(spec("d", "00:00:00:00:00:01"));
    benchmark::DoNotOptimize(d.host().address());
  }
}
BENCHMARK(BM_DeviceBringUp);

void pair_once(bool p256, bool legacy, benchmark::State& state) {
  Simulation sim(next_seed());
  DeviceSpec a = spec("a", "00:00:00:00:00:01");
  DeviceSpec b = spec("b", "00:00:00:00:00:02");
  a.controller.secure_connections = p256;
  b.controller.secure_connections = p256;
  a.host.simple_pairing = !legacy;
  b.host.simple_pairing = !legacy;
  Device& da = sim.add_device(a);
  Device& db = sim.add_device(b);
  bool done = false;
  da.host().pair(db.address(), [&](hci::Status s) { done = s == hci::Status::kSuccess; });
  sim.run_for(20 * kSecond);
  if (!done) state.SkipWithError("pairing failed");
}

void BM_SspPairing_P192(benchmark::State& state) {
  for (auto _ : state) pair_once(false, false, state);
}
BENCHMARK(BM_SspPairing_P192);

void BM_SspPairing_P256(benchmark::State& state) {
  for (auto _ : state) pair_once(true, false, state);
}
BENCHMARK(BM_SspPairing_P256);

void BM_LegacyPinPairing(benchmark::State& state) {
  for (auto _ : state) pair_once(false, true, state);
}
BENCHMARK(BM_LegacyPinPairing);

void BM_BondedReconnect(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim(next_seed());
    Device& a = sim.add_device(spec("a", "00:00:00:00:00:01"));
    Device& b = sim.add_device(spec("b", "00:00:00:00:00:02"));
    bool done = false;
    a.host().pair(b.address(), [&](hci::Status s) { done = s == hci::Status::kSuccess; });
    sim.run_for(20 * kSecond);
    a.host().disconnect(b.address());
    sim.run_for(2 * kSecond);
    if (!done) state.SkipWithError("setup pairing failed");
    state.ResumeTiming();

    bool reconnected = false;
    a.host().pair(b.address(), [&](hci::Status s) {
      reconnected = s == hci::Status::kSuccess;
    });
    sim.run_for(20 * kSecond);
    benchmark::DoNotOptimize(reconnected);
  }
}
BENCHMARK(BM_BondedReconnect);

void BM_LinkKeyExtractionAttack(benchmark::State& state) {
  for (auto _ : state) {
    Scenario s = blap::bench::make_extraction_scenario(next_seed(), table1_profiles()[0]);
    LinkKeyExtractionOptions options;
    options.validate_by_impersonation = false;
    const auto report =
        LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
    if (!report.key_extracted) state.SkipWithError("extraction failed");
  }
}
BENCHMARK(BM_LinkKeyExtractionAttack);

void BM_PageBlockingAttack(benchmark::State& state) {
  for (auto _ : state) {
    Scenario s = blap::bench::make_scenario(next_seed(), table2_profiles()[5],
                                            TransportKind::kUart, true);
    const auto report =
        PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
    if (!report.mitm_established) state.SkipWithError("attack failed");
  }
}
BENCHMARK(BM_PageBlockingAttack);

void BM_BaselineMitmTrial(benchmark::State& state) {
  for (auto _ : state) {
    Scenario s = blap::bench::make_scenario(next_seed(), table2_profiles()[5],
                                            TransportKind::kUart, true);
    benchmark::DoNotOptimize(
        PageBlockingAttack::baseline_trial(*s.sim, *s.attacker, *s.accessory, *s.target));
  }
}
BENCHMARK(BM_BaselineMitmTrial);

// One Table II cell through the campaign engine: 32 baseline trials per
// iteration, worker count from the benchmark argument. Sizes the batch
// throughput the sweep binaries actually see.
void BM_CampaignBaselineCell(benchmark::State& state) {
  const auto& profile = table2_profiles()[5];
  std::size_t successes = 0;
  for (auto _ : state) {
    campaign::CampaignConfig cfg;
    cfg.label = "bench cell";
    cfg.trials = 32;
    cfg.root_seed = next_seed();
    cfg.jobs = static_cast<unsigned>(state.range(0));
    const auto summary =
        campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
          Scenario s = blap::bench::make_scenario(spec.seed, profile,
                                                  TransportKind::kUart, true);
          campaign::TrialResult r;
          r.success = PageBlockingAttack::baseline_trial(*s.sim, *s.attacker,
                                                         *s.accessory, *s.target);
          r.virtual_end = s.sim->now();
          return r;
        });
    successes += summary.successes;
  }
  benchmark::DoNotOptimize(successes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_CampaignBaselineCell)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
