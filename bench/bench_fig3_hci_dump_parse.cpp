// Reproduces FIG. 3: "A link key in a HCI packet and its HCI dump".
//
// The paper's figure shows a bonded phone whose HCI dump contains an
// HCI_Link_Key_Request_Reply command carrying the link key in plaintext,
// decodable by any parser. This bench bonds C to M, reconnects so the stored
// key crosses C's HCI, then:
//   * prints the frame table around the key-bearing packet,
//   * prints the RADIX byte view ("01 0b 04 16 ..." — packet indicator,
//     opcode, length, BD_ADDR, key),
//   * decodes the packet field by field, and
//   * verifies the decoded key equals the bonded key.
#include "bench_util.hpp"

#include "core/snoop_extractor.hpp"
#include "hci/commands.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  Scenario s = make_scenario(3, core::table2_profiles()[5], core::TransportKind::kUart, true);
  s.attacker->set_radio_enabled(false);

  // Bond, disconnect, enable the dump, reconnect: the reconnection pulls the
  // stored key across the HCI.
  bool done = false;
  s.accessory->host().pair(s.target->address(), [&](hci::Status) { done = true; });
  s.sim->run_for(20 * kSecond);
  s.accessory->host().disconnect(s.target->address());
  s.sim->run_for(2 * kSecond);

  s.accessory->host().enable_snoop(true);
  done = false;
  s.accessory->host().pair(s.target->address(), [&](hci::Status) { done = true; });
  s.sim->run_for(20 * kSecond);

  banner("FIG. 3 — A link key in an HCI packet and its HCI dump (device C)");
  std::printf("%s\n", s.accessory->host().snoop().format_table().c_str());

  // Locate the key-bearing record and show its wire bytes + decoded fields.
  const auto extracted = core::extract_link_key_for(s.accessory->host().snoop(),
                                                    s.target->address());
  if (!extracted) {
    std::printf("ERROR: no link key found in the dump\n");
    return 1;
  }
  const auto& record = s.accessory->host().snoop().records()[extracted->frame_index - 1];
  const Bytes wire = record.packet.to_wire();
  std::printf("Frame %zu RADIX view:\n%s\n", extracted->frame_index,
              hexdump(wire).c_str());

  auto params = record.packet.command_params();
  auto cmd = hci::LinkKeyRequestReplyCmd::decode(*params);
  std::printf("Decoded HCI_Link_Key_Request_Reply:\n");
  std::printf("  packet indicator : 0x%02x (HCI command)\n", wire[0]);
  std::printf("  opcode           : 0x%04x (%s)\n", *record.packet.command_opcode(),
              hci::opcode_name(*record.packet.command_opcode()));
  std::printf("  total length     : %zu (0x16 = 22 parameter bytes)\n", params->size());
  std::printf("  BD_ADDR          : %s  (NAP 0x%04x, UAP 0x%02x, LAP 0x%06x)\n",
              cmd->bdaddr.to_string().c_str(), cmd->bdaddr.nap(), cmd->bdaddr.uap(),
              cmd->bdaddr.lap());
  std::printf("  Link_Key         : %s\n", hex(cmd->link_key).c_str());

  const auto bonded = s.accessory->host().security().link_key_for(s.target->address());
  const bool ok = bonded && cmd->link_key == *bonded;
  std::printf("\nkey in dump == bonded key: %s\nFig. 3 shape %s\n", ok ? "yes" : "NO",
              ok ? "HOLDS" : "DOES NOT HOLD");
  return ok ? 0 : 1;
}
