// Supplementary bench: legacy PIN brute-force cost vs PIN length.
//
// Regenerates the Shaked–Wool-style result the paper's §II cites as the
// reason SSP exists: the offline crack of a sniffed legacy pairing is
// linear in 10^digits with a ~10 µs per-guess kernel (2x E22/E21 + E1) —
// so every humanly-typeable PIN falls in seconds. Printed as a table of
// measured crack times per PIN length; also registers a google-benchmark
// timer for the per-guess kernel.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.hpp"
#include "core/air_analysis.hpp"

namespace {

using namespace blap;
using namespace blap::core;

/// One sniffed legacy pairing with a PIN of `digits` digits.
std::pair<LegacyPairingCapture, std::string> make_capture(std::size_t digits,
                                                          std::uint64_t seed) {
  std::string pin;
  for (std::size_t i = 0; i < digits; ++i) pin.push_back(static_cast<char>('1' + (i + seed) % 9));

  Simulation sim(seed);
  AirSniffer sniffer(sim.medium());
  auto legacy_spec = [&pin](const char* name, const char* addr) {
    DeviceSpec spec;
    spec.name = name;
    spec.address = *BdAddr::parse(addr);
    spec.host.simple_pairing = false;
    spec.host.pin_code = pin;
    return spec;
  };
  Device& da = sim.add_device(legacy_spec("a", "00:0d:11:22:33:44"));
  Device& db = sim.add_device(legacy_spec("b", "00:0d:55:66:77:88"));
  da.host().pair(db.address(), [](hci::Status) {});
  sim.run_for(20 * kSecond);
  auto capture = parse_legacy_pairing(sniffer.frames());
  if (!capture) std::abort();
  return {*capture, pin};
}

void BM_PinGuessKernel(benchmark::State& state) {
  auto [capture, pin] = make_capture(4, 1);
  for (auto _ : state) benchmark::DoNotOptimize(try_pin(capture, "0000"));
}
BENCHMARK(BM_PinGuessKernel);

}  // namespace

int main(int argc, char** argv) {
  using namespace blap::bench;

  banner("Supplementary — offline PIN crack cost vs PIN length (refs [14],[15])");
  std::printf("%-10s %-14s %-14s %-12s %s\n", "digits", "keyspace", "guesses", "time (ms)",
              "cracked");
  std::printf("%s\n", std::string(62, '-').c_str());

  bool all_found = true;
  for (std::size_t digits = 1; digits <= 5; ++digits) {
    auto [capture, pin] = make_capture(digits, 100 + digits);
    const auto start = std::chrono::steady_clock::now();
    const auto result = crack_pin(capture, digits);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::uint64_t keyspace = 1;
    for (std::size_t d = 0; d < digits; ++d) keyspace *= 10;
    all_found &= result.found && result.pin == pin;
    std::printf("%-10zu %-14llu %-14llu %-12.1f %s\n", digits,
                static_cast<unsigned long long>(keyspace),
                static_cast<unsigned long long>(result.attempts), ms,
                result.found ? (result.pin == pin ? "yes" : "WRONG PIN") : "NO");
  }
  std::printf("\nEvery short PIN falls offline — the weakness SSP replaced. %s\n",
              all_found ? "HOLDS" : "DOES NOT HOLD");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return all_found ? 0 : 1;
}
