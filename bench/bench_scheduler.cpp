// Microbenchmark for the discrete-event scheduler hot path. Every simulated
// trial is dominated by schedule/fire cycles, so ns/event here bounds the
// throughput of all campaign-scale experiments (Table II alone pays ~10^5
// events per trial).
#include <benchmark/benchmark.h>

#include "common/scheduler.hpp"
#include "obs/obs.hpp"

namespace {

using namespace blap;

// The common case: events scheduled and fired, never cancelled.
void BM_ScheduleFire(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::uint64_t fired = 0;
  for (auto _ : state) {
    Scheduler sched;
    for (std::size_t i = 0; i < batch; ++i) {
      sched.schedule_at(static_cast<SimTime>(i), [&fired] { ++fired; });
    }
    sched.run_all();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleFire)->Arg(64)->Arg(1024)->Arg(16384);

// Same hot path with the observability hook attached (metrics on): what a
// campaign pays per dispatched event when run with --metrics. Compare with
// BM_ScheduleFire to read the tracing-enabled overhead; the no-observer
// configuration above is the "disabled costs one branch" baseline the obs
// layer promises to keep within noise.
void BM_ScheduleFireHooked(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::uint64_t fired = 0;
  obs::ObsConfig config;
  config.metrics = true;
  for (auto _ : state) {
    obs::Observer observer(config);
    Scheduler sched;
    sched.set_hook(&observer);
    for (std::size_t i = 0; i < batch; ++i) {
      sched.schedule_at(static_cast<SimTime>(i), [&fired] { ++fired; });
    }
    sched.run_all();
    benchmark::DoNotOptimize(observer.events_dispatched());
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleFireHooked)->Arg(64)->Arg(1024)->Arg(16384);

// Timer churn: schedule + cancel before firing (LMP response timers, idle
// timers that almost always get cancelled by the response arriving).
void BM_ScheduleCancel(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::uint64_t fired = 0;
  for (auto _ : state) {
    Scheduler sched;
    for (std::size_t i = 0; i < batch; ++i) {
      auto handle = sched.schedule_at(static_cast<SimTime>(i), [&fired] { ++fired; });
      handle.cancel();
    }
    sched.run_all();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleCancel)->Arg(1024);

// Self-rescheduling chain: one live event at a time (periodic beacons,
// page-scan windows). Exercises push/pop with a warm, tiny queue.
void BM_PeriodicChain(benchmark::State& state) {
  const std::size_t hops = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    std::size_t remaining = hops;
    std::function<void()> tick = [&] {
      if (remaining-- > 1) sched.schedule_in(kSlot, tick);
    };
    sched.schedule_in(kSlot, tick);
    sched.run_all();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_PeriodicChain)->Arg(4096);

// Scheduler construction/teardown churn: campaigns build one fresh
// Simulation (and thus one Scheduler) per trial, so setup cost is paid tens
// of thousands of times per sweep.
void BM_SchedulerChurn(benchmark::State& state) {
  std::uint64_t fired = 0;
  for (auto _ : state) {
    Scheduler sched;
    for (std::size_t i = 0; i < 32; ++i) {
      sched.schedule_at(static_cast<SimTime>(i), [&fired] { ++fired; });
    }
    sched.run_all();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_SchedulerChurn);

}  // namespace

BENCHMARK_MAIN();
