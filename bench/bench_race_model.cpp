// Supplementary bench: the page-scan race model behind Table II's baseline.
//
// Sweeps the accessory/attacker page-scan interval ratio and measures the
// attacker's MITM win rate in full simulation, against the closed-form
// prediction P(A first) = c/(2a) (c<=a) or 1 - a/(2c) (c>=a). This is the
// mechanism that produces the paper's footnote-1 observation ("success rate
// of establishing the MITM connection shows 42~60%") — and the reason the
// page blocking attack's determinism matters.
//
// Runs on the campaign engine (BLAP_JOBS workers, per-index seeds), so the
// measured column is bit-identical for any worker count.
#include "bench_util.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;
  using namespace blap::core;

  const int trials = trial_count(120);
  banner("Supplementary — MITM page-race win rate vs scan-interval ratio");
  std::printf("%-12s %-14s %-14s %-10s %s\n", "c/a ratio", "predicted", "measured",
              "|error|", "wilson95");
  std::printf("%s\n", std::string(78, '-').c_str());

  const SimTime a_interval = static_cast<SimTime>(1.28 * kSecond);
  bool ok = true;
  std::uint64_t seed = 70'000;
  for (double ratio : {0.5, 0.75, 0.84, 1.0, 1.25, 1.5, 2.0}) {
    const double predicted = ratio <= 1.0 ? ratio / 2.0 : 1.0 - 1.0 / (2.0 * ratio);

    campaign::CampaignConfig cfg;
    cfg.label = "race c/a=" + std::to_string(ratio);
    cfg.trials = static_cast<std::size_t>(trials);
    cfg.root_seed = seed;
    cfg.seed_fn = sequential_seed;
    seed += static_cast<std::uint64_t>(trials);

    const auto summary = campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
      Scenario s;
      s.sim = std::make_unique<Simulation>(spec.seed);
      DeviceSpec a = attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
      a.controller.page_scan_interval = a_interval;
      DeviceSpec c = accessory_profile().to_spec("headset", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                                 ClassOfDevice(ClassOfDevice::kHandsFree));
      c.host.io_capability = hci::IoCapability::kNoInputNoOutput;
      c.controller.page_scan_interval = static_cast<SimTime>(ratio * static_cast<double>(a_interval));
      DeviceSpec m = table2_profiles()[5].to_spec("victim", *BdAddr::parse("48:90:12:34:56:78"));
      s.attacker = &s.sim->add_device(a);
      s.accessory = &s.sim->add_device(c);
      s.target = &s.sim->add_device(m);
      campaign::TrialResult r;
      r.success = PageBlockingAttack::baseline_trial(*s.sim, *s.attacker, *s.accessory, *s.target);
      r.virtual_end = s.sim->now();
      return r;
    });

    const double measured = summary.success_rate;
    const double error = std::abs(measured - predicted);
    // Tolerance: 3.5 sigma of binomial sampling noise (floor 0.08) — a
    // fixed band would misfire at low trial counts.
    const double sigma = std::sqrt(predicted * (1.0 - predicted) / trials);
    const double tolerance = std::max(0.08, 3.5 * sigma);
    ok &= error < tolerance;
    std::printf("%-12.2f %-14.3f %-14.3f %-10.3f [%.3f, %.3f]\n", ratio, predicted,
                measured, error, summary.ci.low, summary.ci.high);
  }

  std::printf("\n(%d trials per point; set BLAP_TRIALS to tighten.)\n", trials);
  std::printf("Race model matches closed form: %s\n", ok ? "HOLDS" : "DOES NOT HOLD");
  return ok ? 0 : 1;
}
