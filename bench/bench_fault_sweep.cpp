// Robustness sweep: page-blocking MITM success vs channel loss.
//
// The paper's Table II rates assume a clean 10 m lab channel. This bench
// sweeps the fault layer's iid loss axis over {0, 5, 15, 35} % and re-runs
// the full page-blocking attack per cell, measuring how the MITM success
// rate degrades once LMP traffic must survive a lossy channel through the
// baseband ARQ. Per-trial fault counters (drops, retransmissions,
// supervision timeouts) are folded into each cell's deterministic metrics
// JSON.
//
// Env: BLAP_TRIALS (default 100/cell), BLAP_JOBS (worker count; aggregates
// are bit-identical for any value), BLAP_JSON=<path> (dump per-cell JSON,
// per-trial rows included), BLAP_SNAPSHOT_FORK=1 (fork each trial from a
// warm snapshot instead of rebuilding; byte-identical output, CI-diffed).
#include "bench_util.hpp"

#include <fstream>

#include "faults/fault_plan.hpp"
#include "snapshot/fork_campaign.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  const int trials = trial_count(100);
  const double loss_grid[] = {0.0, 0.05, 0.15, 0.35};
  // Same victim the extraction scenarios use; the sweep is about the
  // channel, not the victim profile.
  constexpr std::size_t kProfileIndex = 5;
  const auto& profile = core::table2_profiles()[kProfileIndex];
  const bool fork_mode = snapshot::fork_mode_enabled();
  if (fork_mode) std::fprintf(stderr, "[campaign] snapshot-fork mode\n");

  snapshot::ScenarioParams params;
  params.kind = snapshot::ScenarioParams::Kind::kAbc;
  params.table = snapshot::ProfileTable::kTable2;
  params.profile_index = kProfileIndex;
  params.accessory_transport = core::TransportKind::kUart;
  params.accessory_has_dump = true;
  params.baseline_bias = profile.baseline_mitm_success;

  banner("FAULT SWEEP — page-blocking MITM success vs channel loss");
  std::printf("%-8s | %-9s | %-10s | %-12s | %-12s | %-12s\n", "loss", "success",
              "95% CI", "drops", "arq retx", "supervision");
  std::printf("%s\n", std::string(78, '-').c_str());

  auto counter = [](const campaign::CampaignSummary& s, const char* key) -> std::uint64_t {
    const auto it = s.metrics.counters.find(key);
    return it == s.metrics.counters.end() ? 0 : it->second;
  };

  bool shape_holds = true;
  double clean_rate = 0.0;
  std::string json_dump;
  std::uint64_t wall_ns_total = 0;
  unsigned jobs_used = 1;
  std::uint64_t root = 77'000;
  for (const double loss : loss_grid) {
    campaign::CampaignConfig cfg;
    cfg.label = "page blocking loss=" + std::to_string(loss);
    cfg.trials = static_cast<std::size_t>(trials);
    cfg.root_seed = root;
    root += 1'000'000;

    const auto trial_body = [&](const campaign::TrialSpec& spec, Scenario& s) {
      auto& obs = s.sim->enable_observability({.tracing = false, .metrics = true});
      if (loss > 0.0) {
        faults::FaultPlan plan;
        plan.seed = spec.seed;
        plan.loss = loss;
        s.sim->set_fault_plan(plan);
      }
      const auto report =
          core::PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
      campaign::TrialResult r;
      r.success = report.mitm_established;
      r.virtual_end = s.sim->now();
      r.metrics = std::make_shared<obs::MetricsSnapshot>(obs.snapshot());
      return r;
    };
    const auto summary =
        fork_mode ? snapshot::run_fork_campaign(cfg, params, trial_body)
                  : campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
                      Scenario s = snapshot::build_scenario(spec.seed, params);
                      return trial_body(spec, s);
                    });

    std::printf("%6.0f%%  | %7.1f%%  | %4.1f-%4.1f%% | %12llu | %12llu | %12llu\n",
                100.0 * loss, 100.0 * summary.success_rate, 100.0 * summary.ci.low,
                100.0 * summary.ci.high,
                static_cast<unsigned long long>(counter(summary, "radio.faults.loss")),
                static_cast<unsigned long long>(counter(summary, "arq.retransmissions")),
                static_cast<unsigned long long>(
                    counter(summary, "controller.supervision_timeouts")));

    if (loss == 0.0) clean_rate = summary.success_rate;
    // Shape: the clean channel reproduces the paper's deterministic 100 %,
    // losses really happen on lossy cells, and the ARQ is engaged.
    if (loss == 0.0 && summary.success_rate < 1.0) shape_holds = false;
    if (loss > 0.0 && counter(summary, "radio.faults.loss") == 0) shape_holds = false;
    if (loss > 0.0 && counter(summary, "arq.retransmissions") == 0) shape_holds = false;
    // Degradation: the heaviest cell must not beat the clean channel.
    if (loss == loss_grid[3] && summary.success_rate > clean_rate) shape_holds = false;

    wall_ns_total += summary.wall_total_ns;
    jobs_used = summary.jobs_used;
    json_dump += summary.to_json(true);
  }

  std::printf("\n(%d trials/cell; seeds are pure per-index functions, so the table is\n"
              "bit-identical for every BLAP_JOBS value. Shape %s.)\n",
              trials, shape_holds ? "HOLDS" : "DOES NOT HOLD");
  std::fprintf(stderr, "[campaign] fault sweep: %.3f s wall on %u worker(s)\n",
               static_cast<double>(wall_ns_total) * 1e-9, jobs_used);

  if (const char* path = std::getenv("BLAP_JSON")) {
    std::ofstream out(path);
    out << json_dump;
    std::fprintf(stderr, "[campaign] aggregate JSON written to %s\n", path);
  }
  return shape_holds ? 0 : 1;
}
