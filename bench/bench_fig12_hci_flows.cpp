// Reproduces FIG. 12: "HCI dump logs for normal pairing and pairing under
// page blocking attack".
//
// Runs both scenarios against the same victim and prints the victim-side
// frame tables. The distinguishing pattern asserted (paper §VI-B2):
//   (a) normal   : HCI_Create_Connection ... HCI_Authentication_Requested
//   (b) attacked : HCI_Connection_Request + HCI_Accept_Connection_Request
//                  ... HCI_Authentication_Requested
// i.e. under attack the victim is the pairing initiator AND the connection
// responder simultaneously.
#include "bench_util.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  // --- (a) normal pairing ----------------------------------------------------
  Scenario normal = make_scenario(12, core::table2_profiles()[5],
                                  core::TransportKind::kUart, true);
  normal.attacker->set_radio_enabled(false);
  normal.target->host().enable_snoop(true);
  bool done = false;
  normal.target->host().pair(normal.accessory->address(), [&](hci::Status) { done = true; });
  normal.sim->run_for(20 * kSecond);

  banner("FIG. 12a — HCI dump for normal pairing (victim M)");
  std::printf("%s\n", normal.target->host().snoop().format_table().c_str());
  const auto flow_a = core::classify_pairing_flow(normal.target->host().snoop());
  std::printf("classification: %s\n", to_string(flow_a.flow));

  // --- (b) pairing under page blocking --------------------------------------
  Scenario attacked = make_scenario(13, core::table2_profiles()[5],
                                    core::TransportKind::kUart, true);
  const auto report = core::PageBlockingAttack::run(*attacked.sim, *attacked.attacker,
                                                    *attacked.accessory, *attacked.target, {});

  banner("FIG. 12b — HCI dump for pairing under page blocking attack (victim M)");
  std::printf("%s\n", report.m_flow_table.c_str());
  std::printf("classification: %s\n", to_string(report.m_flow));

  const bool ok = flow_a.flow == core::PairingFlow::kNormal &&
                  report.m_flow == core::PairingFlow::kPageBlocked &&
                  report.mitm_established;
  std::printf("\nFig. 12 distinguishing pattern %s\n", ok ? "HOLDS" : "DOES NOT HOLD");
  return ok ? 0 : 1;
}
