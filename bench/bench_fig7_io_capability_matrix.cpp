// Reproduces FIG. 7: "(Partially displayed) IO capability mapping for
// authentication stage 1" — the DisplayYesNo x NoInputNoOutput quadrant the
// paper shows for both version regimes, plus the full 4x4 association-model
// matrix as context.
//
// The downgrade-critical property checked at the end: whenever either side
// is NoInputNoOutput, the association model is Just Works (automatic
// confirmation) — so a NoInputNoOutput attacker always bypasses the numeric
// comparison challenge.
#include "bench_util.hpp"

#include "host/ui_model.hpp"

namespace {
const char* short_io(blap::hci::IoCapability io) {
  using IO = blap::hci::IoCapability;
  switch (io) {
    case IO::kDisplayOnly: return "DisplayOnly";
    case IO::kDisplayYesNo: return "DisplayYesNo";
    case IO::kKeyboardOnly: return "KeyboardOnly";
    case IO::kNoInputNoOutput: return "NoInputNoOutput";
  }
  return "?";
}
}  // namespace

int main() {
  using namespace blap;
  using namespace blap::bench;
  using host::BtVersion;
  using IO = hci::IoCapability;

  const IO paper_quadrant[] = {IO::kDisplayYesNo, IO::kNoInputNoOutput};
  const IO all_caps[] = {IO::kDisplayOnly, IO::kDisplayYesNo, IO::kKeyboardOnly,
                         IO::kNoInputNoOutput};

  for (BtVersion version : {BtVersion::kV4_2, BtVersion::kV5_0}) {
    banner(std::string("FIG. 7") + (version == BtVersion::kV4_2 ? "a" : "b") +
           " — IO capability mapping, version " + host::to_string(version) +
           (version == BtVersion::kV4_2 ? " and lower" : " and higher"));
    for (IO responder : paper_quadrant) {
      for (IO initiator : paper_quadrant) {
        std::printf("Device B (Responder) = %-16s Device A (Initiator) = %-16s\n",
                    short_io(responder), short_io(initiator));
        std::printf("  -> %s\n\n",
                    host::describe_cell(version, initiator, responder).c_str());
      }
    }
  }

  banner("Full association model matrix (spec Table 5.7, OOB absent)");
  std::printf("%-16s", "resp \\ init");
  for (IO initiator : all_caps) std::printf(" %-18s", short_io(initiator));
  std::printf("\n");
  for (IO responder : all_caps) {
    std::printf("%-16s", short_io(responder));
    for (IO initiator : all_caps)
      std::printf(" %-18s", host::to_string(host::select_association_model(initiator, responder)));
    std::printf("\n");
  }

  // Downgrade property check.
  bool ok = true;
  for (IO other : all_caps) {
    ok &= host::select_association_model(IO::kNoInputNoOutput, other) ==
          host::AssociationModel::kJustWorks;
    ok &= host::select_association_model(other, IO::kNoInputNoOutput) ==
          host::AssociationModel::kJustWorks;
  }
  // And the v4.2 silent-initiator property the page blocking attack uses.
  const auto v42 = host::confirmation_behavior(BtVersion::kV4_2, IO::kDisplayYesNo,
                                               IO::kNoInputNoOutput, true);
  const auto v50 = host::confirmation_behavior(BtVersion::kV5_0, IO::kDisplayYesNo,
                                               IO::kNoInputNoOutput, true);
  ok &= v42.automatic_confirmation && !v42.shows_popup;
  ok &= v50.shows_popup && !v50.shows_numeric_value;

  std::printf("\nNoInputNoOutput always forces Just Works; v4.2 initiator confirms silently;\n"
              "v5.0 popup carries no comparison value: %s\n",
              ok ? "CONFIRMED" : "VIOLATED");
  return ok ? 0 : 1;
}
