// Reproduces TABLE I: "List of tested devices that are vulnerable to link
// key extraction attack".
//
// For each of the paper's nine OS/host-stack/device rows, the accessory C is
// instantiated from the profile, bonded to M, and the full Fig. 5 attack is
// run through the profile's capture channel (HCI dump for Android/BlueZ,
// USB sniff for the Windows stacks). The printed table mirrors the paper's
// columns and appends the measured attack outcome; the paper's result is
// that every row is vulnerable, with superuser privilege required only on
// Ubuntu/BlueZ.
#include "bench_util.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  banner("TABLE I — Devices vulnerable to link key extraction attack");
  std::printf("%-14s %-28s %-16s %-12s | %-9s %-9s %-12s\n", "OS", "Host stack", "Device",
              "SU privilege", "extracted", "key match", "impersonate");
  std::printf("%s\n", std::string(110, '-').c_str());

  int vulnerable = 0;
  std::uint64_t seed = 42;
  for (const auto& profile : core::table1_profiles()) {
    Scenario s = make_extraction_scenario(seed++, profile);
    core::LinkKeyExtractionOptions options;
    options.use_usb_sniff = !profile.hci_dump_available;
    const auto report =
        core::LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
    const bool ok = report.key_extracted && report.key_matches_bond;
    if (ok) ++vulnerable;
    std::printf("%-14s %-28s %-16s %-12s | %-9s %-9s %-12s\n", profile.os.c_str(),
                profile.host_stack.c_str(), profile.model.c_str(),
                profile.su_required ? "Y" : "N", report.key_extracted ? "yes" : "NO",
                report.key_matches_bond ? "yes" : "NO",
                report.impersonation_succeeded ? "yes" : "NO");
  }

  std::printf("\nVulnerable: %d / %zu rows (paper: 9 / 9)\n", vulnerable,
              core::table1_profiles().size());
  return vulnerable == static_cast<int>(core::table1_profiles().size()) ? 0 : 1;
}
