// Reproduces FIG. 2: "Pairing and authentication procedures" —
// (a) non-bonded devices: IO capability exchange, ECDH public keys,
//     Authentication Stage 1, link key calculation, then LMP authentication
//     and encryption;
// (b) bonded devices: LMP authentication only (pairing omitted).
//
// The bench drives both procedures on the simulator and prints the victim's
// HCI dump for each, asserting the structural difference: the bonded
// reconnection shows no Simple Pairing traffic and answers the controller's
// Link_Key_Request positively.
#include "bench_util.hpp"

#include "core/snoop_extractor.hpp"

int main() {
  using namespace blap;
  using namespace blap::bench;

  Scenario s = make_scenario(2, core::table2_profiles()[5], core::TransportKind::kUart, true);
  s.attacker->set_radio_enabled(false);  // legitimate procedures only
  s.target->host().enable_snoop(true);

  // --- (a) non-bonded: full SSP + LMP auth + encryption ---------------------
  bool done = false;
  hci::Status status{};
  s.target->host().pair(s.accessory->address(), [&](hci::Status st) {
    done = true;
    status = st;
  });
  s.sim->run_for(20 * kSecond);

  banner("FIG. 2a — Pairing + authentication, non-bonded devices (M's HCI dump)");
  std::printf("%s\n", s.target->host().snoop().format_table().c_str());
  const bool fresh_ok = done && status == hci::Status::kSuccess;
  const auto keys_a = core::extract_link_keys(s.target->host().snoop());
  bool saw_notification = false;
  for (const auto& key : keys_a)
    if (key.source == core::KeySource::kLinkKeyNotification) saw_notification = true;
  std::printf("pairing completed: %s; link key delivered by controller: %s\n",
              fresh_ok ? "yes" : "NO", saw_notification ? "yes" : "NO");

  // --- (b) bonded: LMP authentication only ----------------------------------
  s.target->host().disconnect(s.accessory->address());
  s.sim->run_for(2 * kSecond);
  s.target->host().snoop().clear();

  done = false;
  const std::size_t pairings_before = s.target->host().pairing_events().size();
  s.target->host().pair(s.accessory->address(), [&](hci::Status st) {
    done = true;
    status = st;
  });
  s.sim->run_for(20 * kSecond);

  banner("FIG. 2b — Reconnection of bonded devices (M's HCI dump)");
  std::printf("%s\n", s.target->host().snoop().format_table().c_str());
  const bool bonded_ok = done && status == hci::Status::kSuccess;
  const bool no_new_pairing = s.target->host().pairing_events().size() == pairings_before;
  bool key_reply = false;
  for (const auto& key : core::extract_link_keys(s.target->host().snoop()))
    if (key.source == core::KeySource::kLinkKeyRequestReply) key_reply = true;
  std::printf("reconnect completed: %s; pairing skipped: %s; stored key used: %s\n",
              bonded_ok ? "yes" : "NO", no_new_pairing ? "yes" : "NO",
              key_reply ? "yes" : "NO");

  const bool ok = fresh_ok && saw_notification && bonded_ok && no_new_pairing && key_reply;
  std::printf("\nFig. 2 shape %s\n", ok ? "HOLDS" : "DOES NOT HOLD");
  return ok ? 0 : 1;
}
